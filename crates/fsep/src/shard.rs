//! The three FSEP sharding operations of Fig. 4: `shard`, `unshard`,
//! `reshard`.
//!
//! * **shard** — at initialisation, each expert's flat parameter buffer
//!   is split into `N` equal chunks (zero-padded to a multiple of `N`);
//!   device `d` keeps chunk `d` of *every* expert. Shape metadata is kept
//!   separately ([`crate::ExpertMeta`]) so restored buffers can be
//!   un-flattened — the `total_experts` / `real_experts` separation of
//!   Fig. 4(a).
//! * **unshard** — given an arbitrary [`ExpertLayout`], every device
//!   restores the full parameters of exactly the experts the layout
//!   assigns to it, pulling one chunk from every device: a regular,
//!   balanced All-to-All (Sec. 3.1's communication analysis). The data
//!   movement is performed for real and logged into a [`CommLog`].
//! * **reshard** — after backward, each device splits its full expert
//!   gradients into `N` chunks and sends chunk `d` to device `d`, where
//!   contributions from all replicas are reduced in ascending device
//!   order (deterministic — the FSDP-equivalence tests depend on it).

use crate::expert::{ExpertGrad, ExpertMeta, ExpertParams};
use laer_cluster::{DeviceId, ExpertId};
use laer_planner::ExpertLayout;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error produced by the FSEP sharding engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsepError {
    /// No experts were given to `shard`.
    NoExperts,
    /// Experts had inconsistent shapes.
    MixedShapes,
    /// The layout's dimensions disagree with the sharded state.
    LayoutMismatch {
        /// Expected (devices, experts).
        expected: (usize, usize),
        /// Layout's (devices, experts).
        got: (usize, usize),
    },
    /// A gradient was supplied for an expert the device did not restore.
    UnexpectedGradient {
        /// Reporting device.
        device: DeviceId,
        /// Offending expert.
        expert: ExpertId,
    },
}

impl fmt::Display for FsepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsepError::NoExperts => write!(f, "shard requires at least one expert"),
            FsepError::MixedShapes => write!(f, "experts must share one shape"),
            FsepError::LayoutMismatch { expected, got } => write!(
                f,
                "layout shape {got:?} does not match sharded state {expected:?}"
            ),
            FsepError::UnexpectedGradient { device, expert } => {
                write!(f, "{device} produced a gradient for unrestored {expert}")
            }
        }
    }
}

impl std::error::Error for FsepError {}

/// Byte-level record of the data movement performed by `unshard` /
/// `reshard`, used to charge simulated communication time.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CommLog {
    /// `(src, dst, bytes)` transfers, excluding local (src == dst) moves.
    pub transfers: Vec<(DeviceId, DeviceId, u64)>,
}

impl CommLog {
    /// Total bytes moved across device boundaries.
    pub fn total_bytes(&self) -> u64 {
        self.transfers.iter().map(|&(_, _, b)| b).sum()
    }

    /// Bytes sent by each device (indexed by device).
    pub fn send_bytes(&self, n: usize) -> Vec<u64> {
        let mut out = vec![0u64; n];
        for &(src, _, b) in &self.transfers {
            out[src.index()] += b;
        }
        out
    }

    /// Bytes received by each device (indexed by device).
    pub fn recv_bytes(&self, n: usize) -> Vec<u64> {
        let mut out = vec![0u64; n];
        for &(_, dst, b) in &self.transfers {
            out[dst.index()] += b;
        }
        out
    }
}

/// The fully restored experts of one device after `unshard`.
#[derive(Debug, Clone, PartialEq)]
pub struct RestoredDevice {
    device: DeviceId,
    experts: Vec<(ExpertId, ExpertParams)>,
}

impl RestoredDevice {
    /// The device these experts were restored on.
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// The restored `(expert, parameters)` pairs, ascending by expert id
    /// (replicated ids appear once — a device computes each hosted expert
    /// with one parameter copy regardless of replica multiplicity).
    pub fn experts(&self) -> &[(ExpertId, ExpertParams)] {
        &self.experts
    }

    /// Parameters of one restored expert, if hosted here.
    pub fn expert(&self, id: ExpertId) -> Option<&ExpertParams> {
        self.experts.iter().find(|(e, _)| *e == id).map(|(_, p)| p)
    }
}

/// Result of an `unshard`: per-device restored experts plus the
/// communication log.
#[derive(Debug, Clone, PartialEq)]
pub struct RestoredExperts {
    devices: Vec<RestoredDevice>,
    comm: CommLog,
}

impl RestoredExperts {
    /// Restored state of device `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    pub fn device(&self, d: usize) -> &RestoredDevice {
        &self.devices[d]
    }

    /// All devices, ascending.
    pub fn devices(&self) -> &[RestoredDevice] {
        &self.devices
    }

    /// The data movement performed by this unshard.
    pub fn comm_log(&self) -> &CommLog {
        &self.comm
    }
}

/// Per-device, per-expert flattened gradient chunks, as produced by
/// [`FsepExperts::reshard_gradients`]: `out[device][expert]` is the
/// summed gradient for the chunk of `expert` that `device` owns.
pub type GradChunks = Vec<Vec<Vec<f32>>>;

/// The sharded expert state of one MoE layer across `N` devices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FsepExperts {
    devices: usize,
    meta: ExpertMeta,
    chunk_len: usize,
    /// `chunks[d][e]` — device `d`'s chunk of expert `e` (zero-padded).
    chunks: Vec<Vec<Vec<f32>>>,
}

impl FsepExperts {
    /// `shard`: splits every expert across `devices` chunks.
    ///
    /// # Errors
    ///
    /// Returns [`FsepError::NoExperts`] or [`FsepError::MixedShapes`].
    ///
    /// # Panics
    ///
    /// Panics if `devices` is zero.
    pub fn shard(experts: &[ExpertParams], devices: usize) -> Result<Self, FsepError> {
        assert!(devices > 0, "at least one device");
        let meta = experts.first().ok_or(FsepError::NoExperts)?.meta();
        if experts.iter().any(|e| e.meta() != meta) {
            return Err(FsepError::MixedShapes);
        }
        let param_len = meta.param_count();
        let chunk_len = param_len.div_ceil(devices);
        let mut chunks = vec![Vec::with_capacity(experts.len()); devices];
        for expert in experts {
            let mut padded = expert.flat().to_vec();
            padded.resize(chunk_len * devices, 0.0);
            for (d, chunk) in padded.chunks(chunk_len).enumerate() {
                chunks[d].push(chunk.to_vec());
            }
        }
        Ok(Self {
            devices,
            meta,
            chunk_len,
            chunks,
        })
    }

    /// Number of devices `N`.
    pub fn num_devices(&self) -> usize {
        self.devices
    }

    /// Number of experts `E`.
    pub fn num_experts(&self) -> usize {
        self.chunks[0].len()
    }

    /// Expert shape metadata (`real_experts`).
    pub fn meta(&self) -> ExpertMeta {
        self.meta
    }

    /// Per-device sharded bytes (model-state share of one layer).
    pub fn shard_bytes_per_device(&self) -> u64 {
        (self.num_experts() * self.chunk_len * 4) as u64
    }

    /// Length of one parameter chunk (`⌈3·H·H' / N⌉` elements).
    pub fn chunk_len(&self) -> usize {
        self.chunk_len
    }

    /// `unshard`: restores full parameters per the layout, moving chunk
    /// data between devices and logging the traffic.
    ///
    /// # Errors
    ///
    /// Returns [`FsepError::LayoutMismatch`] if the layout's shape
    /// disagrees.
    pub fn unshard(&self, layout: &ExpertLayout) -> Result<RestoredExperts, FsepError> {
        self.check_layout(layout)?;
        let mut comm = CommLog::default();
        let mut devices = Vec::with_capacity(self.devices);
        for d in 0..self.devices {
            let dst = DeviceId::new(d);
            let mut experts = Vec::new();
            for e in 0..self.num_experts() {
                let expert = ExpertId::new(e);
                if layout.replica_count(dst, expert) == 0 {
                    continue;
                }
                // Gather chunk s from every device s (ascending order).
                let mut flat = Vec::with_capacity(self.chunk_len * self.devices);
                for s in 0..self.devices {
                    flat.extend_from_slice(&self.chunks[s][e]);
                    if s != d {
                        comm.transfers
                            .push((DeviceId::new(s), dst, (self.chunk_len * 4) as u64));
                    }
                }
                flat.truncate(self.meta.param_count());
                experts.push((expert, ExpertParams::from_flat(self.meta, flat)));
            }
            devices.push(RestoredDevice {
                device: dst,
                experts,
            });
        }
        Ok(RestoredExperts { devices, comm })
    }

    /// `reshard`: splits every device's full expert gradients into
    /// chunks, routes chunk `d` to device `d` and reduces replicas in
    /// ascending source-device order. Returns the per-device sharded
    /// gradients (`grads[d][e]`, zero where no replica contributed) and
    /// the communication log.
    ///
    /// # Errors
    ///
    /// Returns [`FsepError`] if shapes disagree or a gradient arrives for
    /// an expert the layout did not place on the reporting device.
    pub fn reshard_gradients(
        &self,
        layout: &ExpertLayout,
        device_grads: &[Vec<(ExpertId, ExpertGrad)>],
    ) -> Result<(GradChunks, CommLog), FsepError> {
        self.check_layout(layout)?;
        if device_grads.len() != self.devices {
            return Err(FsepError::LayoutMismatch {
                expected: (self.devices, self.num_experts()),
                got: (device_grads.len(), self.num_experts()),
            });
        }
        let mut comm = CommLog::default();
        let mut out = vec![vec![vec![0.0f32; self.chunk_len]; self.num_experts()]; self.devices];
        for (src_idx, grads) in device_grads.iter().enumerate() {
            let src = DeviceId::new(src_idx);
            for (expert, grad) in grads {
                if layout.replica_count(src, *expert) == 0 {
                    return Err(FsepError::UnexpectedGradient {
                        device: src,
                        expert: *expert,
                    });
                }
                let mut padded = grad.data().to_vec();
                padded.resize(self.chunk_len * self.devices, 0.0);
                for (dst_idx, chunk) in padded.chunks(self.chunk_len).enumerate() {
                    let acc = &mut out[dst_idx][expert.index()];
                    for (a, &g) in acc.iter_mut().zip(chunk) {
                        *a += g;
                    }
                    if dst_idx != src_idx {
                        comm.transfers.push((
                            src,
                            DeviceId::new(dst_idx),
                            (self.chunk_len * 4) as u64,
                        ));
                    }
                }
            }
        }
        Ok((out, comm))
    }

    /// Applies an in-place update to device `d`'s chunk of expert `e`
    /// (used by the sharded optimizer).
    pub(crate) fn chunk_mut(&mut self, device: usize, expert: usize) -> &mut [f32] {
        &mut self.chunks[device][expert]
    }

    /// Reconstructs the full parameters of every expert (test/debug
    /// convenience; communication-free gather).
    pub fn materialize_all(&self) -> Vec<ExpertParams> {
        (0..self.num_experts())
            .map(|e| {
                let mut flat = Vec::with_capacity(self.chunk_len * self.devices);
                for d in 0..self.devices {
                    flat.extend_from_slice(&self.chunks[d][e]);
                }
                flat.truncate(self.meta.param_count());
                ExpertParams::from_flat(self.meta, flat)
            })
            .collect()
    }

    fn check_layout(&self, layout: &ExpertLayout) -> Result<(), FsepError> {
        if layout.num_devices() != self.devices || layout.num_experts() != self.num_experts() {
            return Err(FsepError::LayoutMismatch {
                expected: (self.devices, self.num_experts()),
                got: (layout.num_devices(), layout.num_experts()),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn experts(n: usize, h: usize, hp: usize, seed: u64) -> Vec<ExpertParams> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| ExpertParams::random(h, hp, &mut rng))
            .collect()
    }

    #[test]
    fn shard_unshard_roundtrip_is_bit_exact() {
        let exps = experts(4, 8, 12, 1);
        let sharded = FsepExperts::shard(&exps, 4).unwrap();
        let layout = ExpertLayout::classic_ep(4, 4, 2).unwrap();
        let restored = sharded.unshard(&layout).unwrap();
        // Device 0 hosts experts 0 and 1 in the classic layout.
        assert_eq!(restored.device(0).experts().len(), 2);
        assert_eq!(
            *restored.device(0).expert(ExpertId::new(0)).unwrap(),
            exps[0]
        );
        assert_eq!(
            *restored.device(0).expert(ExpertId::new(1)).unwrap(),
            exps[1]
        );
        assert!(restored.device(0).expert(ExpertId::new(2)).is_none());
    }

    #[test]
    fn unshard_supports_arbitrary_layout() {
        let exps = experts(4, 8, 12, 2);
        let sharded = FsepExperts::shard(&exps, 4).unwrap();
        // Hot-expert layout: device 1 restores experts 0 and 1 even
        // though classic EP would pin it to {2, 3} (Fig. 6's re-layout).
        let mut layout = ExpertLayout::empty(4, 4, 2).unwrap();
        for d in 0..4 {
            layout.add_replica(DeviceId::new(d), ExpertId::new(0));
        }
        layout.add_replica(DeviceId::new(0), ExpertId::new(1));
        layout.add_replica(DeviceId::new(1), ExpertId::new(1));
        layout.add_replica(DeviceId::new(2), ExpertId::new(2));
        layout.add_replica(DeviceId::new(3), ExpertId::new(3));
        layout.validate().unwrap();
        let restored = sharded.unshard(&layout).unwrap();
        assert_eq!(
            *restored.device(1).expert(ExpertId::new(0)).unwrap(),
            exps[0]
        );
        assert_eq!(
            *restored.device(1).expert(ExpertId::new(1)).unwrap(),
            exps[1]
        );
    }

    /// Sec. 3.1: unshard communication is a *balanced* All-to-All —
    /// `C·(N−1)/N·Ψ_expert` bytes sent and received per device.
    #[test]
    fn unshard_traffic_is_balanced() {
        let exps = experts(8, 8, 12, 3);
        let n = 4;
        let sharded = FsepExperts::shard(&exps, n).unwrap();
        let layout = ExpertLayout::classic_ep(n, 8, 2).unwrap();
        let restored = sharded.unshard(&layout).unwrap();
        let recv = restored.comm_log().recv_bytes(n);
        // Every device receives C*(N-1) chunks.
        let chunk = (8 * 12 * 3usize).div_ceil(n) * 4;
        for &r in &recv {
            assert_eq!(r, (2 * (n - 1) * chunk) as u64);
        }
        let send = restored.comm_log().send_bytes(n);
        let first = send[0];
        assert!(send.iter().all(|&s| s == first), "sends balanced: {send:?}");
    }

    #[test]
    fn reshard_reduces_replica_gradients() {
        let exps = experts(2, 4, 4, 4);
        let n = 2;
        let sharded = FsepExperts::shard(&exps, n).unwrap();
        // Both devices host expert 0; expert 1 only on device 1.
        let mut layout = ExpertLayout::empty(2, 2, 2).unwrap();
        layout.add_replica(DeviceId::new(0), ExpertId::new(0));
        layout.add_replica(DeviceId::new(0), ExpertId::new(0));
        layout.add_replica(DeviceId::new(1), ExpertId::new(0));
        layout.add_replica(DeviceId::new(1), ExpertId::new(1));
        let meta = sharded.meta();
        let grad_of = |v: f32| ExpertGrad::from_parts(meta, vec![v; meta.param_count()]);
        let grads = vec![
            vec![(ExpertId::new(0), grad_of(1.0))],
            vec![
                (ExpertId::new(0), grad_of(2.0)),
                (ExpertId::new(1), grad_of(5.0)),
            ],
        ];
        let (out, comm) = sharded.reshard_gradients(&layout, &grads).unwrap();
        // Expert 0's gradient chunks hold 1.0 + 2.0 everywhere (within
        // the unpadded region).
        let unpadded = meta.param_count().div_ceil(n);
        assert!(out[0][0][..unpadded].iter().all(|&g| g == 3.0));
        assert!(out[1][1][..meta.param_count() - unpadded]
            .iter()
            .all(|&g| g == 5.0));
        assert!(comm.total_bytes() > 0);
    }

    #[test]
    fn reshard_rejects_gradient_without_replica() {
        let exps = experts(2, 4, 4, 5);
        let sharded = FsepExperts::shard(&exps, 2).unwrap();
        let layout = ExpertLayout::classic_ep(2, 2, 1).unwrap();
        let grads = vec![
            vec![(ExpertId::new(1), ExpertGrad::zeros(sharded.meta()))],
            vec![],
        ];
        assert!(matches!(
            sharded.reshard_gradients(&layout, &grads),
            Err(FsepError::UnexpectedGradient { .. })
        ));
    }

    #[test]
    fn shard_validates_input() {
        assert!(matches!(
            FsepExperts::shard(&[], 4),
            Err(FsepError::NoExperts)
        ));
        let mut rng = StdRng::seed_from_u64(0);
        let mixed = vec![
            ExpertParams::random(4, 4, &mut rng),
            ExpertParams::random(4, 8, &mut rng),
        ];
        assert!(matches!(
            FsepExperts::shard(&mixed, 2),
            Err(FsepError::MixedShapes)
        ));
    }

    #[test]
    fn materialize_matches_originals() {
        let exps = experts(3, 4, 6, 6);
        // 3*4*6 = 72 params over 5 devices -> padding path exercised.
        let sharded = FsepExperts::shard(&exps, 5).unwrap();
        assert_eq!(sharded.materialize_all(), exps);
    }

    #[test]
    fn layout_mismatch_detected() {
        let exps = experts(4, 4, 4, 7);
        let sharded = FsepExperts::shard(&exps, 4).unwrap();
        let wrong = ExpertLayout::classic_ep(2, 4, 2).unwrap();
        assert!(matches!(
            sharded.unshard(&wrong),
            Err(FsepError::LayoutMismatch { .. })
        ));
    }
}
