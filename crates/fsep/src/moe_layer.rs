//! A complete numeric MoE layer: top-k gating, dispatch, expert
//! computation and *weighted* combine (`y = Σ g_i(x) · f_i(x)`, Sec. 2),
//! with exact backward through both the experts and the gate.
//!
//! The [`crate::reference`] machinery proves FSEP's losslessness at
//! per-expert-batch granularity; this module closes the loop at full
//! layer granularity: tokens are routed by a real gate, computed on
//! whichever replica the token dispatcher picked, scaled by the gate
//! weights, and the gate itself receives gradients through the top-k
//! softmax — all bit-identical between the dense and FSEP executions.

use crate::expert::{ExpertGrad, ExpertParams};
use crate::shard::{FsepError, FsepExperts, RestoredExperts};
use crate::tensor::Matrix;
use laer_cluster::{DeviceId, ExpertId};
use laer_planner::ExpertLayout;
use laer_routing::TokenGate;
use serde::{Deserialize, Serialize};

/// Router weights `W_g ∈ ℝ^{E×H}` (row-major, one row per expert).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GateParams {
    weights: Matrix,
    top_k: usize,
}

impl GateParams {
    /// Creates a gate from an `E × H` weight matrix.
    ///
    /// # Panics
    ///
    /// Panics if `top_k` is zero or exceeds the expert count.
    pub fn new(weights: Matrix, top_k: usize) -> Self {
        assert!(
            top_k >= 1 && top_k <= weights.rows(),
            "top_k must be in 1..=experts"
        );
        Self { weights, top_k }
    }

    /// Number of experts `E`.
    pub fn experts(&self) -> usize {
        self.weights.rows()
    }

    /// Router top-k `K`.
    pub fn top_k(&self) -> usize {
        self.top_k
    }

    /// The raw weights.
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }
}

/// One token's routing decision with everything backward needs.
#[derive(Debug, Clone)]
struct TokenRoute {
    experts: Vec<usize>,
    weights: Vec<f32>,
}

/// Output of a forward pass through the MoE layer.
#[derive(Debug, Clone)]
pub struct MoeForward {
    /// Layer output, `S × H`.
    pub output: Matrix,
    routes: Vec<TokenRoute>,
    x: Matrix,
    /// Expert outputs per token per slot (`routes[t].experts[s]` applied
    /// to token `t`), kept for the gate backward.
    expert_outputs: Vec<Vec<Matrix>>,
}

/// Gradients of one MoE-layer backward pass.
#[derive(Debug, Clone)]
pub struct MoeGrads {
    /// `dL/dW_g`, `E × H`.
    pub gate: Matrix,
    /// Per-expert flat weight gradients (zero for unused experts).
    pub experts: Vec<ExpertGrad>,
}

/// Access to full expert parameters during layer execution — either the
/// dense store or FSEP-restored parameters on a chosen device.
trait ExpertAccess {
    fn params(&self, token_index: usize, expert: ExpertId) -> &ExpertParams;
}

struct DenseAccess<'a> {
    experts: &'a [ExpertParams],
}

impl ExpertAccess for DenseAccess<'_> {
    fn params(&self, _token: usize, expert: ExpertId) -> &ExpertParams {
        &self.experts[expert.index()]
    }
}

struct FsepAccess<'a> {
    restored: &'a RestoredExperts,
    /// Device computing each token's experts (round-robin replica pick,
    /// deterministic).
    placement: Vec<Vec<DeviceId>>,
}

impl ExpertAccess for FsepAccess<'_> {
    fn params(&self, token: usize, expert: ExpertId) -> &ExpertParams {
        let dev = self.device_for(token, expert);
        self.restored
            .device(dev.index())
            .expert(expert)
            .unwrap_or_else(|| unreachable!("placement only selects hosting devices"))
    }
}

impl FsepAccess<'_> {
    fn device_for(&self, token: usize, expert: ExpertId) -> DeviceId {
        // Placement stores one device per (token, slot); find the slot
        // matching this expert by scanning the token's devices and
        // checking hosting.
        for &dev in &self.placement[token] {
            if self.restored.device(dev.index()).expert(expert).is_some() {
                return dev;
            }
        }
        unreachable!("token placement must include a host of {expert}")
    }
}

/// A numeric MoE layer.
#[derive(Debug, Clone, PartialEq)]
pub struct MoeLayer {
    gate: GateParams,
}

impl MoeLayer {
    /// Creates a layer from gate parameters.
    pub fn new(gate: GateParams) -> Self {
        Self { gate }
    }

    /// The gate in use.
    pub fn gate(&self) -> &GateParams {
        &self.gate
    }

    /// Dense forward: every expert's parameters are local.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree (`x` is `S × H`, experts are `E`).
    pub fn forward_dense(&self, x: &Matrix, experts: &[ExpertParams]) -> MoeForward {
        assert_eq!(experts.len(), self.gate.experts(), "expert count");
        self.forward_with(x, &DenseAccess { experts })
    }

    /// FSEP forward: expert parameters come from an unshard under
    /// `layout`; each token's experts are computed on the first hosting
    /// device (a deterministic stand-in for the dispatcher's pick —
    /// parameters are bit-identical on every replica, so the choice
    /// cannot affect values).
    ///
    /// # Errors
    ///
    /// Returns [`FsepError`] if the layout misses an expert entirely.
    pub fn forward_fsep(
        &self,
        x: &Matrix,
        sharded: &FsepExperts,
        layout: &ExpertLayout,
    ) -> Result<MoeForward, FsepError> {
        let restored = sharded.unshard(layout)?;
        // Token t, slot s -> first device hosting the routed expert.
        let gate = TokenGate::new(self.gate.experts(), self.gate.top_k());
        let logits = x.matmul_nt(self.gate.weights());
        let mut placement = Vec::with_capacity(x.rows());
        for t in 0..x.rows() {
            let route = gate.route(logits.row(t));
            let mut devs = Vec::with_capacity(route.experts.len());
            for &e in &route.experts {
                let host = (0..layout.num_devices())
                    .map(DeviceId::new)
                    .find(|d| layout.replica_count(*d, ExpertId::new(e)) > 0)
                    .ok_or(FsepError::LayoutMismatch {
                        expected: (layout.num_devices(), layout.num_experts()),
                        got: (layout.num_devices(), layout.num_experts()),
                    })?;
                devs.push(host);
            }
            placement.push(devs);
        }
        let access = FsepAccess {
            restored: &restored,
            placement,
        };
        Ok(self.forward_with(x, &access))
    }

    fn forward_with(&self, x: &Matrix, access: &dyn ExpertAccess) -> MoeForward {
        let gate = TokenGate::new(self.gate.experts(), self.gate.top_k());
        let logits = x.matmul_nt(self.gate.weights()); // S x E
        let mut output = Matrix::zeros(x.rows(), x.cols());
        let mut routes = Vec::with_capacity(x.rows());
        let mut expert_outputs = Vec::with_capacity(x.rows());
        for t in 0..x.rows() {
            let assignment = gate.route(logits.row(t));
            let token = Matrix::from_vec(1, x.cols(), x.row(t).to_vec());
            let mut slot_outputs = Vec::with_capacity(assignment.experts.len());
            for (slot, &e) in assignment.experts.iter().enumerate() {
                let params = access.params(t, ExpertId::new(e));
                let (y, _) = params.forward(&token);
                let w = assignment.weights[slot];
                for (o, &v) in output.data_mut()[t * x.cols()..(t + 1) * x.cols()]
                    .iter_mut()
                    .zip(y.data())
                {
                    *o += w * v;
                }
                slot_outputs.push(y);
            }
            routes.push(TokenRoute {
                experts: assignment.experts,
                weights: assignment.weights,
            });
            expert_outputs.push(slot_outputs);
        }
        MoeForward {
            output,
            routes,
            x: x.clone(),
            expert_outputs,
        }
    }

    /// Backward through the weighted combine, the experts and the gate's
    /// top-k softmax, given `dL/dy`.
    ///
    /// # Panics
    ///
    /// Panics if `grad_y`'s shape disagrees with the forward output.
    pub fn backward_dense(
        &self,
        fwd: &MoeForward,
        experts: &[ExpertParams],
        grad_y: &Matrix,
    ) -> MoeGrads {
        assert_eq!(grad_y.rows(), fwd.output.rows(), "batch size");
        assert_eq!(grad_y.cols(), fwd.output.cols(), "hidden width");
        let h = fwd.x.cols();
        let e = self.gate.experts();
        let mut expert_grads: Vec<ExpertGrad> = experts
            .iter()
            .map(|p| ExpertGrad::zeros(p.meta()))
            .collect();
        // dL/dlogits, densified over the selected slots only.
        let mut d_logits = Matrix::zeros(fwd.x.rows(), e);
        for t in 0..fwd.x.rows() {
            let route = &fwd.routes[t];
            let token = Matrix::from_vec(1, h, fwd.x.row(t).to_vec());
            let dy_t = Matrix::from_vec(1, h, grad_y.row(t).to_vec());
            // dL/dw_s = dy . f_s(x); expert grad via scaled dy.
            let mut d_weights = Vec::with_capacity(route.experts.len());
            for (slot, &ex) in route.experts.iter().enumerate() {
                let y_s = &fwd.expert_outputs[t][slot];
                let dot: f32 = dy_t.data().iter().zip(y_s.data()).map(|(a, b)| a * b).sum();
                d_weights.push(dot);
                // Expert backward with dy scaled by the gate weight.
                let scaled = Matrix::from_vec(
                    1,
                    h,
                    dy_t.data()
                        .iter()
                        .map(|v| v * route.weights[slot])
                        .collect(),
                );
                let params = &experts[ex];
                let (_, cache) = params.forward(&token);
                let (_, g) = params.backward(&cache, &scaled);
                expert_grads[ex].accumulate(&g);
            }
            // Softmax backward over the selected slots:
            // dL/dz_s = w_s · (dL/dw_s − Σ_r w_r · dL/dw_r).
            let inner: f32 = route
                .weights
                .iter()
                .zip(&d_weights)
                .map(|(w, dw)| w * dw)
                .sum();
            for (slot, &ex) in route.experts.iter().enumerate() {
                let dz = route.weights[slot] * (d_weights[slot] - inner);
                d_logits.data_mut()[t * e + ex] = dz;
            }
        }
        // dW_g = d_logitsᵀ · x  (E x H).
        let gate = d_logits.matmul_tn(&fwd.x);
        MoeGrads {
            gate,
            experts: expert_grads,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(seed: u64) -> (MoeLayer, Vec<ExpertParams>, Matrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (e, h, hp, s) = (4usize, 6usize, 8usize, 5usize);
        let gate = GateParams::new(Matrix::random(e, h, 0.8, &mut rng), 2);
        let experts: Vec<_> = (0..e)
            .map(|_| ExpertParams::random(h, hp, &mut rng))
            .collect();
        let x = Matrix::random(s, h, 0.5, &mut rng);
        (MoeLayer::new(gate), experts, x)
    }

    #[test]
    fn forward_is_weighted_combination() {
        let (layer, experts, x) = setup(1);
        let fwd = layer.forward_dense(&x, &experts);
        // Recompute token 0 by hand.
        let route = &fwd.routes[0];
        let token = Matrix::from_vec(1, x.cols(), x.row(0).to_vec());
        let mut manual = vec![0.0f32; x.cols()];
        for (slot, &e) in route.experts.iter().enumerate() {
            let (y, _) = experts[e].forward(&token);
            for (m, &v) in manual.iter_mut().zip(y.data()) {
                *m += route.weights[slot] * v;
            }
        }
        for (a, b) in manual.iter().zip(fwd.output.row(0)) {
            assert_eq!(a, b);
        }
    }

    /// FSEP forward equals the dense forward bit-for-bit under an
    /// arbitrary replicated layout — the full-layer precision claim.
    #[test]
    fn fsep_forward_equals_dense() {
        let (layer, experts, x) = setup(2);
        let dense = layer.forward_dense(&x, &experts);
        let sharded = FsepExperts::shard(&experts, 4).unwrap();
        let mut layout = ExpertLayout::empty(4, 4, 2).unwrap();
        layout.add_replica(DeviceId::new(0), ExpertId::new(0));
        layout.add_replica(DeviceId::new(0), ExpertId::new(1));
        layout.add_replica(DeviceId::new(1), ExpertId::new(0));
        layout.add_replica(DeviceId::new(1), ExpertId::new(2));
        layout.add_replica(DeviceId::new(2), ExpertId::new(3));
        layout.add_replica(DeviceId::new(2), ExpertId::new(1));
        layout.add_replica(DeviceId::new(3), ExpertId::new(2));
        layout.add_replica(DeviceId::new(3), ExpertId::new(3));
        layout.validate().unwrap();
        let fsep = layer.forward_fsep(&x, &sharded, &layout).unwrap();
        assert_eq!(dense.output, fsep.output);
    }

    /// Gate gradient check against central finite differences on the
    /// quadratic loss `L = ½‖y‖²`.
    #[test]
    fn gate_gradients_match_finite_differences() {
        let (layer, experts, x) = setup(3);
        let fwd = layer.forward_dense(&x, &experts);
        let grads = layer.backward_dense(&fwd, &experts, &fwd.output);
        let loss = |l: &MoeLayer| l.forward_dense(&x, &experts).output.squared_norm() * 0.5;
        let eps = 1e-2f32;
        let e = layer.gate.experts();
        let h = x.cols();
        for idx in [0usize, 3, h + 1, 2 * h + 5, e * h - 1] {
            let mut wp = layer.gate.weights().clone();
            wp.data_mut()[idx] += eps;
            let lp = loss(&MoeLayer::new(GateParams::new(wp, 2)));
            let mut wm = layer.gate.weights().clone();
            wm.data_mut()[idx] -= eps;
            let lm = loss(&MoeLayer::new(GateParams::new(wm, 2)));
            let fd = (lp - lm) / (2.0 * eps as f64);
            let analytic = grads.gate.data()[idx] as f64;
            assert!(
                (fd - analytic).abs() < 2e-2 * (1.0 + analytic.abs()),
                "W_g[{idx}]: fd {fd} vs analytic {analytic}"
            );
        }
    }

    /// Expert gradient check: perturbing an expert's weight changes the
    /// loss as predicted by the layer backward.
    #[test]
    fn expert_gradients_match_finite_differences() {
        let (layer, experts, x) = setup(4);
        let fwd = layer.forward_dense(&x, &experts);
        let grads = layer.backward_dense(&fwd, &experts, &fwd.output);
        // Pick the most-used expert to ensure a nonzero gradient.
        let used: Vec<usize> = fwd.routes.iter().flat_map(|r| r.experts.clone()).collect();
        let target = *used.first().expect("some expert used");
        let eps = 1e-2f32;
        for idx in [0usize, 7, 31] {
            let mut up = experts.clone();
            let mut flat = up[target].clone().into_flat();
            flat[idx] += eps;
            up[target] = ExpertParams::from_flat(up[target].meta(), flat);
            let lp = layer.forward_dense(&x, &up).output.squared_norm() * 0.5;
            let mut dn = experts.clone();
            let mut flat = dn[target].clone().into_flat();
            flat[idx] -= eps;
            dn[target] = ExpertParams::from_flat(dn[target].meta(), flat);
            let lm = layer.forward_dense(&x, &dn).output.squared_norm() * 0.5;
            let fd = (lp - lm) / (2.0 * eps as f64);
            let analytic = grads.experts[target].data()[idx] as f64;
            assert!(
                (fd - analytic).abs() < 2e-2 * (1.0 + analytic.abs()),
                "expert {target} w[{idx}]: fd {fd} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn unused_experts_get_zero_gradients() {
        let (layer, experts, x) = setup(5);
        let fwd = layer.forward_dense(&x, &experts);
        let grads = layer.backward_dense(&fwd, &experts, &fwd.output);
        let used: std::collections::BTreeSet<usize> =
            fwd.routes.iter().flat_map(|r| r.experts.clone()).collect();
        for (e, g) in grads.experts.iter().enumerate() {
            if !used.contains(&e) {
                assert!(g.data().iter().all(|&v| v == 0.0), "expert {e}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "top_k")]
    fn invalid_gate_panics() {
        let w = Matrix::zeros(2, 4);
        let _ = GateParams::new(w, 3);
    }
}
