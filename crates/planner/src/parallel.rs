//! Multi-threaded candidate evaluation.
//!
//! The paper offloads layout solving to CPU processes and notes (Sec. 5.4)
//! that "since solving is layer-independent, we can parallelize solvers
//! for different layers across multiple CPU processes". This module
//! provides both levels: candidate schemes of one layer are evaluated
//! across threads, and independent layers can be planned concurrently —
//! with results identical to the serial [`crate::Planner::plan`].

use crate::tuner::{Plan, Planner};
use laer_routing::RoutingMatrix;
use std::sync::Mutex;

/// Locks a mutex, recovering from poisoning (worker panics propagate via
/// `std::thread::scope`, so a poisoned lock only occurs while unwinding).
fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Plans one layer by evaluating the candidate set across `threads`
/// worker threads. Deterministic: the same plan as the serial tuner
/// (ties broken toward the lower candidate index).
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn plan_parallel(planner: &Planner, demand: &RoutingMatrix, threads: usize) -> Plan {
    plan_parallel_indexed(planner, demand, threads).1
}

/// [`plan_parallel`] also reporting which deduplicated candidate index
/// won — the determinism tests assert the `(index, plan)` pair is
/// identical at any thread count.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn plan_parallel_indexed(
    planner: &Planner,
    demand: &RoutingMatrix,
    threads: usize,
) -> (usize, Plan) {
    assert!(threads > 0, "at least one thread");
    // Same dedup as the serial tuner: duplicates cost the same, and ties
    // already break toward the lower index, so dropping repeats keeps the
    // result identical while saving whole evaluations.
    let schemes = planner.unique_schemes(planner.candidate_schemes(demand));
    let loads = demand.expert_loads();
    // (candidate index, plan) — the lowest total wins, ties to low index.
    let best: Mutex<Option<(usize, Plan)>> = Mutex::new(None);
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(schemes.len()).max(1) {
            scope.spawn(|| {
                // One routing scratch per worker, reused across every
                // candidate this worker claims.
                let mut scratch = crate::lite_routing::RouteScratch::new();
                loop {
                    let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if idx >= schemes.len() {
                        break;
                    }
                    let plan = planner.evaluate_scheme_inner(
                        &schemes[idx],
                        &loads,
                        demand,
                        &mut scratch,
                        None,
                    );
                    let mut guard = lock_recover(&best);
                    let replace = match &*guard {
                        None => true,
                        Some((best_idx, best_plan)) => {
                            let t = plan.predicted.total();
                            let bt = best_plan.predicted.total();
                            t < bt || (t == bt && idx < *best_idx)
                        }
                    };
                    if replace {
                        *guard = Some((idx, plan));
                    }
                }
            });
        }
    });
    match best.into_inner() {
        Ok(Some(found)) => found,
        // `schemes` is non-empty (the tuner always emits at least the
        // proportional scheme), so a missing result can only mean a
        // worker panicked — which `std::thread::scope` already turned
        // into a propagated panic before reaching this point.
        _ => unreachable!("candidate set is non-empty"),
    }
}

/// Plans several independent layers concurrently, one thread per layer
/// (bounded by `threads`), preserving input order in the output.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn plan_layers_parallel(
    planner: &Planner,
    demands: &[RoutingMatrix],
    threads: usize,
) -> Vec<Plan> {
    assert!(threads > 0, "at least one thread");
    let results: Vec<Mutex<Option<Plan>>> = demands.iter().map(|_| Mutex::new(None)).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(demands.len()).max(1) {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if idx >= demands.len() {
                    break;
                }
                let plan = planner.plan(&demands[idx]);
                *lock_recover(&results[idx]) = Some(plan);
            });
        }
    });
    results
        .into_iter()
        .map(|m| match m.into_inner() {
            Ok(Some(plan)) => plan,
            // Every index below `demands.len()` is claimed exactly once;
            // worker panics propagate out of `std::thread::scope` first.
            _ => unreachable!("every layer planned"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CostParams, PlannerConfig};
    use laer_cluster::Topology;
    use laer_routing::{RoutingGenerator, RoutingGeneratorConfig};

    fn setup() -> (Planner, Vec<RoutingMatrix>) {
        let planner = Planner::new(
            PlannerConfig::new(2).with_epsilon(6),
            CostParams::mixtral_8x7b(),
            Topology::paper_cluster(),
        );
        let mut gen = RoutingGenerator::new(RoutingGeneratorConfig::new(32, 8, 8192).with_seed(5));
        let demands: Vec<_> = (0..4).map(|_| gen.next_iteration()).collect();
        (planner, demands)
    }

    #[test]
    fn parallel_matches_serial() {
        let (planner, demands) = setup();
        for d in &demands {
            let serial = planner.plan(d);
            let parallel = plan_parallel(&planner, d, 4);
            assert_eq!(serial.layout, parallel.layout);
            assert_eq!(serial.predicted, parallel.predicted);
        }
    }

    #[test]
    fn layer_parallel_matches_serial() {
        let (planner, demands) = setup();
        let serial: Vec<_> = demands.iter().map(|d| planner.plan(d)).collect();
        let parallel = plan_layers_parallel(&planner, &demands, 3);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.layout, p.layout);
        }
    }

    /// The pooled tuner picks the identical (candidate index, plan) at
    /// every thread count — the cross-thread tie-break (strict lower
    /// total, then lower index) cannot drift with scheduling.
    #[test]
    fn thread_count_does_not_change_winner() {
        let (planner, demands) = setup();
        for d in &demands {
            let (idx1, plan1) = plan_parallel_indexed(&planner, d, 1);
            for threads in [2usize, 4, 8] {
                let (idx, plan) = plan_parallel_indexed(&planner, d, threads);
                assert_eq!(idx, idx1, "winning index at {threads} threads");
                assert_eq!(plan.layout, plan1.layout);
                assert_eq!(
                    plan.predicted.total().to_bits(),
                    plan1.predicted.total().to_bits()
                );
                assert_eq!(plan.routing.entries(), plan1.routing.entries());
            }
        }
    }

    #[test]
    fn single_thread_works() {
        let (planner, demands) = setup();
        let plan = plan_parallel(&planner, &demands[0], 1);
        assert!(plan.layout.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let (planner, demands) = setup();
        let _ = plan_parallel(&planner, &demands[0], 0);
    }
}
