//! The planner's time model — Eqs. 2–4 of the paper.
//!
//! `T = T_comm + T_comp` with
//!
//! * `T_comm` built from the paper's pairwise terms
//!   `S[i][j][k] · V_comm / bw(i, k)` (Eq. 2's communication sum), but
//!   aggregated per device and taken over the straggler:
//!   `T_comm = 4 · max_i max(send_i, recv_i)` where `send_i` sums the
//!   pairwise terms leaving device `i` and `recv_i` those arriving.
//!   The paper writes the aggregation as a flat sum; a flat sum is total
//!   byte-seconds rather than wall time, and since the All-to-All is a
//!   synchronising collective the executor's iteration time tracks the
//!   slowest device — the max aggregation makes the planner optimise the
//!   quantity the system actually experiences (and what
//!   `laer_sim::all_to_all_time` charges);
//! * `T_comp = (3 + F_ckpt) · max_i V_comp · Σ_{j,k} S[k][j][i] / B_comp`.

use crate::token_routing::TokenRouting;
use laer_cluster::{Interconnect, LinkKind};
use laer_model::{CostModel, GpuSpec, ModelConfig, ModelPreset};
use serde::{Deserialize, Serialize};

/// Scalar parameters of the planner's time model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// Bytes moved per token per All-to-All hop (`V_comm`).
    pub v_comm: f64,
    /// Forward FLOPs per (token, expert) assignment (`V_comp`).
    pub v_comp: f64,
    /// Effective per-GPU throughput (`B_comp`), FLOP/s.
    pub b_comp: f64,
    /// Whether activation checkpointing doubles the forward pass
    /// (`F_ckpt` of Eq. 2's computation term).
    pub checkpointing: bool,
    /// Whether the pairwise communication term also charges the link's
    /// per-message latency, matching `laer_sim::all_to_all_time`'s
    /// per-peer `latency + bytes/bw` pricing. The paper's Eq. 2 (and
    /// the default here) is bandwidth-only — accurate at the paper's 32
    /// devices, but at fleet scale a rare expert's replica receives
    /// from hundreds of distinct peers and the accumulated latency
    /// dominates its A2A time, so fleet-size planning must price it.
    /// Charged per routing entry (a slight over-count when one peer
    /// pair carries several experts' traffic — the simulator charges
    /// per aggregated pair), which is conservative for planning.
    #[serde(default)]
    pub latency_aware: bool,
}

impl CostParams {
    /// Builds cost parameters from a model configuration and GPU spec.
    pub fn from_model(cfg: &ModelConfig, gpu: GpuSpec, checkpointing: bool) -> Self {
        let cm = CostModel::new(cfg, gpu);
        Self {
            v_comm: cm.v_comm(),
            v_comp: cm.v_comp(),
            b_comp: gpu.effective_flops(),
            checkpointing,
            latency_aware: false,
        }
    }

    /// Enables or disables per-peer latency in the communication term
    /// (see [`CostParams::latency_aware`]).
    #[must_use]
    pub fn with_latency_aware(mut self, on: bool) -> Self {
        self.latency_aware = on;
        self
    }

    /// The Mixtral-8x7B e8k2 / A100 operating point used in most of the
    /// paper's experiments.
    pub fn mixtral_8x7b() -> Self {
        Self::from_model(
            &ModelPreset::Mixtral8x7bE8k2.config(),
            GpuSpec::a100(),
            false,
        )
    }

    /// The `(3 + F_ckpt)` forward/backward multiplier.
    pub fn compute_multiplier(&self) -> f64 {
        if self.checkpointing {
            4.0
        } else {
            3.0
        }
    }
}

/// The two components of the objective, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// `T_comm` of Eq. 2.
    pub comm: f64,
    /// `T_comp` of Eq. 2.
    pub comp: f64,
}

impl CostBreakdown {
    /// `T = T_comm + T_comp`.
    pub fn total(&self) -> f64 {
        self.comm + self.comp
    }

    /// Re-prices this breakdown for the executor's chunked
    /// dispatch/combine pipeline: the layer's A2A is split into
    /// `num_chunks` equal chunks and every chunk but the first can hide
    /// behind the previous chunk's expert compute, so the exposed
    /// communication becomes
    ///
    /// ```text
    /// T_comm' = T_comm/C + (C - 1) · max(0, T_comm/C - T_comp/C)
    /// ```
    ///
    /// — the first chunk's A2A plus the per-chunk residue that compute
    /// cannot cover (equivalently `max(T_comm - T_comp·(C-1)/C,
    /// T_comm/C)`, the pipeline makespan minus the compute it overlaps).
    /// `T_comp` is unchanged: chunking moves communication off the
    /// critical path but performs the same FLOPs. With `num_chunks <= 1`
    /// the breakdown is returned bit-identically, matching the
    /// executor's invariant that one chunk reproduces the whole-iteration
    /// schedule.
    pub fn pipelined(self, num_chunks: usize) -> CostBreakdown {
        if num_chunks <= 1 {
            return self;
        }
        let c = num_chunks as f64;
        let per_chunk_comm = self.comm / c;
        let per_chunk_comp = self.comp / c;
        CostBreakdown {
            comm: per_chunk_comm + (c - 1.0) * (per_chunk_comm - per_chunk_comp).max(0.0),
            comp: self.comp,
        }
    }
}

/// Effective point-to-point bandwidth used by both the planner and the
/// simulator: NVLink per device, NIC shared per node. Generic over
/// [`Interconnect`] so degraded network views price faults directly.
pub(crate) fn effective_bw<I: Interconnect + ?Sized>(
    net: &I,
    a: laer_cluster::DeviceId,
    b: laer_cluster::DeviceId,
) -> f64 {
    match net.link_kind(a, b) {
        LinkKind::Local => f64::INFINITY,
        LinkKind::IntraNode => net.bandwidth(a, b),
        LinkKind::InterNode => net.bandwidth(a, b) / net.devices_per_node() as f64,
        // The rack spine is shared by every device in the rack.
        LinkKind::InterRack => net.bandwidth(a, b) / net.devices_per_rack().unwrap_or(1) as f64,
    }
}

/// Evaluates the objective `T = T_comm + T_comp` for a routing strategy.
pub fn time_cost<I: Interconnect + ?Sized>(
    net: &I,
    routing: &TokenRouting,
    params: &CostParams,
) -> CostBreakdown {
    let n = net.num_devices();
    // T_comm: per-device send/receive times from the pairwise terms of
    // Eq. 2, straggler max, over the four A2A passes of one layer.
    let mut send = vec![0.0f64; n];
    let mut recv = vec![0.0f64; n];
    for &(src, _, dst, tokens) in routing.entries() {
        if src == dst {
            continue;
        }
        let mut t = tokens as f64 * params.v_comm / effective_bw(net, src, dst);
        if params.latency_aware {
            t += net.latency(src, dst);
        }
        send[src.index()] += t;
        recv[dst.index()] += t;
    }
    let straggler = send
        .iter()
        .zip(&recv)
        .map(|(&s, &r)| s.max(r))
        .fold(0.0, f64::max);
    let comm = 4.0 * straggler;
    // T_comp: the straggler device's forward time, times (3 + F_ckpt).
    let max_load = routing
        .device_compute_loads()
        .into_iter()
        .max()
        .unwrap_or(0) as f64;
    let comp = params.compute_multiplier() * max_load * params.v_comp / params.b_comp;
    CostBreakdown { comm, comp }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laer_cluster::{DegradedView, DeviceId, ExpertId, Topology};

    /// A degraded view raises `T_comm` for routings over the weak link.
    #[test]
    fn degraded_link_raises_comm_cost() {
        let topo = Topology::paper_cluster();
        let mut view = DegradedView::new(topo.clone());
        view.degrade_link(DeviceId::new(0), DeviceId::new(9), 0.5);
        let mut s = TokenRouting::new(32, 8);
        s.push(DeviceId::new(0), ExpertId::new(0), DeviceId::new(9), 1000);
        let nominal = time_cost(&topo, &s, &params());
        let degraded = time_cost(&view, &s, &params());
        assert!((degraded.comm / nominal.comm - 2.0).abs() < 1e-9);
        assert_eq!(degraded.comp, nominal.comp);
    }

    fn params() -> CostParams {
        CostParams::mixtral_8x7b()
    }

    #[test]
    fn local_routing_has_zero_comm() {
        let topo = Topology::single_node(2).unwrap();
        let mut s = TokenRouting::new(2, 2);
        s.push(DeviceId::new(0), ExpertId::new(0), DeviceId::new(0), 100);
        let c = time_cost(&topo, &s, &params());
        assert_eq!(c.comm, 0.0);
        assert!(c.comp > 0.0);
    }

    #[test]
    fn remote_routing_pays_comm() {
        let topo = Topology::paper_cluster();
        let mut s = TokenRouting::new(32, 8);
        s.push(DeviceId::new(0), ExpertId::new(0), DeviceId::new(9), 1000);
        let c = time_cost(&topo, &s, &params());
        assert!(c.comm > 0.0);
    }

    #[test]
    fn inter_node_comm_costs_more() {
        let topo = Topology::paper_cluster();
        let mut intra = TokenRouting::new(32, 8);
        intra.push(DeviceId::new(0), ExpertId::new(0), DeviceId::new(1), 1000);
        let mut inter = TokenRouting::new(32, 8);
        inter.push(DeviceId::new(0), ExpertId::new(0), DeviceId::new(9), 1000);
        let ci = time_cost(&topo, &intra, &params());
        let cx = time_cost(&topo, &inter, &params());
        assert!(cx.comm > ci.comm * 5.0);
    }

    #[test]
    fn comp_uses_straggler() {
        let topo = Topology::single_node(2).unwrap();
        let mut even = TokenRouting::new(2, 2);
        even.push(DeviceId::new(0), ExpertId::new(0), DeviceId::new(0), 500);
        even.push(DeviceId::new(1), ExpertId::new(1), DeviceId::new(1), 500);
        let mut skew = TokenRouting::new(2, 2);
        skew.push(DeviceId::new(0), ExpertId::new(0), DeviceId::new(0), 900);
        skew.push(DeviceId::new(1), ExpertId::new(1), DeviceId::new(1), 100);
        let p = params();
        let ce = time_cost(&topo, &even, &p);
        let cs = time_cost(&topo, &skew, &p);
        assert!((cs.comp / ce.comp - 900.0 / 500.0).abs() < 1e-9);
    }

    #[test]
    fn checkpointing_multiplier() {
        let mut p = params();
        assert_eq!(p.compute_multiplier(), 3.0);
        p.checkpointing = true;
        assert_eq!(p.compute_multiplier(), 4.0);
    }

    #[test]
    fn breakdown_total() {
        let b = CostBreakdown {
            comm: 1.5,
            comp: 2.5,
        };
        assert_eq!(b.total(), 4.0);
    }

    /// One chunk is the identity — bit-identical, mirroring the
    /// executor's `num_chunks = 1` invariant.
    #[test]
    fn pipelined_single_chunk_is_identity() {
        let b = CostBreakdown {
            comm: 0.37,
            comp: 0.21,
        };
        for c in [0usize, 1] {
            let p = b.pipelined(c);
            assert_eq!(p.comm.to_bits(), b.comm.to_bits());
            assert_eq!(p.comp.to_bits(), b.comp.to_bits());
        }
    }

    /// Exposed communication is monotonically non-increasing in the
    /// chunk count and bounded below by the first chunk's A2A.
    #[test]
    fn pipelined_comm_monotone_and_floored() {
        let b = CostBreakdown {
            comm: 0.4,
            comp: 0.3,
        };
        let mut prev = b.pipelined(1).comm;
        for c in [2usize, 3, 4, 8, 16, 64] {
            let p = b.pipelined(c);
            assert!(p.comm <= prev + 1e-15, "chunks {c}: {} > {prev}", p.comm);
            assert!(p.comm >= b.comm / c as f64 - 1e-15);
            assert_eq!(p.comp, b.comp, "chunking must not change T_comp");
            prev = p.comm;
        }
    }

    /// Compute-bound layers hide everything but the first chunk; comm-
    /// bound layers keep the residue exposed.
    #[test]
    fn pipelined_limits() {
        // Compute-rich: comp >> comm, so exposed comm collapses to
        // comm / C exactly.
        let rich = CostBreakdown {
            comm: 0.1,
            comp: 1.0,
        };
        let p = rich.pipelined(4);
        assert!((p.comm - 0.1 / 4.0).abs() < 1e-15);
        // Comm-bound: comp = 0, chunking cannot hide anything.
        let bound = CostBreakdown {
            comm: 0.8,
            comp: 0.0,
        };
        let q = bound.pipelined(8);
        assert!((q.comm - 0.8).abs() < 1e-15);
    }
}
