//! Exhaustive layout search for tiny instances.
//!
//! The paper notes (Sec. 3.2) that the joint problem is a nonlinear
//! integer program whose exact solution (via solvers like SCIP) does not
//! scale. For *tiny* instances we can enumerate every layout satisfying
//! the capacity constraint, route each with lite routing and keep the
//! cheapest — giving tests a ground-truth bound on the greedy tuner's
//! optimality gap.

use crate::cost::{CostBreakdown, CostParams};
use crate::delta::IncrementalCost;
use crate::layout::ExpertLayout;
use laer_cluster::{DeviceId, ExpertId, Topology};
use laer_routing::RoutingMatrix;

/// Upper bound on `(E choose C)^N` enumeration size accepted before
/// panicking — exhaustive search is test-only machinery.
const MAX_ENUMERATION: u128 = 2_000_000;

/// Enumerates every layout in which each device hosts `capacity`
/// *distinct* experts and every expert has at least one replica, and
/// returns the one minimising the Eq. 2 objective under lite routing.
///
/// # Panics
///
/// Panics if the instance is too large to enumerate (see
/// `MAX_ENUMERATION`) or shapes are inconsistent.
pub fn exhaustive_best_layout(
    topo: &Topology,
    demand: &RoutingMatrix,
    capacity: usize,
    params: &CostParams,
) -> (ExpertLayout, CostBreakdown) {
    let n = topo.num_devices();
    let e = demand.num_experts();
    assert_eq!(n, demand.num_devices(), "device count mismatch");
    let per_device = combinations(e, capacity);
    let total = (per_device.len() as u128)
        .checked_pow(n as u32)
        .filter(|&t| t <= MAX_ENUMERATION);
    assert!(
        total.is_some(),
        "instance too large for exhaustive search: {}^{n} layouts",
        per_device.len()
    );

    // Walk the odometer through the incremental evaluator: each
    // increment patches only the changed devices' combinations
    // (`set_device_experts` diffs), so only the affected experts'
    // routing columns are rebuilt per state instead of the whole
    // layout. Intermediate non-covering states are fine — routing is
    // deferred until `cost()` and only covering states are priced.
    // Selection is bit-identical to the from-scratch build because the
    // delta evaluator reproduces `lite_route` + `time_cost` bit for bit.
    let mut initial = ExpertLayout::empty(n, e, capacity)
        .unwrap_or_else(|_| unreachable!("caller validated small shapes"));
    for dev in 0..n {
        for &expert in &per_device[0] {
            initial.add_replica(DeviceId::new(dev), ExpertId::new(expert));
        }
    }
    let mut inc = IncrementalCost::new(topo, demand, &initial, params);
    let mut best: Option<(ExpertLayout, CostBreakdown)> = None;
    let mut choice = vec![0usize; n];
    loop {
        // Evaluate the layout for the current choice vector.
        if inc.all_experts_covered() {
            let cost = inc.cost();
            let better = match &best {
                None => true,
                Some((_, b)) => cost.total() < b.total(),
            };
            if better {
                best = Some((inc.layout(), cost));
            }
        }
        // Odometer increment, diffing each changed device through the
        // evaluator.
        let mut i = 0;
        loop {
            if i == n {
                return best
                    .unwrap_or_else(|| unreachable!("a covering layout exists when N*C >= E"));
            }
            let old = choice[i];
            choice[i] += 1;
            if choice[i] < per_device.len() {
                inc.set_device_experts(DeviceId::new(i), &per_device[old], &per_device[choice[i]]);
                break;
            }
            choice[i] = 0;
            inc.set_device_experts(DeviceId::new(i), &per_device[old], &per_device[0]);
            i += 1;
        }
    }
}

/// All `C`-subsets of `0..E`, lexicographically.
fn combinations(e: usize, c: usize) -> Vec<Vec<usize>> {
    assert!(c >= 1 && c <= e, "capacity must be in 1..=experts");
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(c);
    fn rec(start: usize, e: usize, c: usize, current: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if current.len() == c {
            out.push(current.clone());
            return;
        }
        for i in start..e {
            current.push(i);
            rec(i + 1, e, c, current, out);
            current.pop();
        }
    }
    rec(0, e, c, &mut current, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Planner, PlannerConfig};
    use laer_routing::{RoutingGenerator, RoutingGeneratorConfig};

    fn tiny_params() -> CostParams {
        CostParams::mixtral_8x7b()
    }

    #[test]
    fn combinations_count() {
        assert_eq!(combinations(4, 2).len(), 6);
        assert_eq!(combinations(3, 3).len(), 1);
        assert_eq!(combinations(5, 1).len(), 5);
    }

    #[test]
    fn exhaustive_finds_valid_minimum() {
        let topo = Topology::single_node(4).unwrap();
        let mut r = RoutingMatrix::zeros(4, 4).unwrap();
        // Heavy skew toward expert 0.
        for d in 0..4 {
            r.set(DeviceId::new(d), ExpertId::new(0), 700);
            r.set(DeviceId::new(d), ExpertId::new(1), 100);
            r.set(DeviceId::new(d), ExpertId::new(2), 100);
            r.set(DeviceId::new(d), ExpertId::new(3), 100);
        }
        let (layout, cost) = exhaustive_best_layout(&topo, &r, 2, &tiny_params());
        assert!(layout.validate().is_ok());
        assert!(cost.total() > 0.0);
        // The optimum must replicate expert 0 more than the cold experts.
        assert!(layout.expert_replicas(ExpertId::new(0)) >= 3);
    }

    /// The greedy tuner stays within a modest factor of the exhaustive
    /// optimum on random tiny instances (the paper's justification for
    /// the heuristic: near-optimal at a tiny fraction of the cost).
    #[test]
    fn greedy_is_near_optimal_on_tiny_instances() {
        let topo = Topology::new(2, 2).unwrap();
        let planner = Planner::new(
            PlannerConfig::new(2).with_epsilon(6),
            tiny_params(),
            topo.clone(),
        );
        let mut worst_gap: f64 = 1.0;
        for seed in 1u64..=8 {
            let mut gen =
                RoutingGenerator::new(RoutingGeneratorConfig::new(4, 4, 2048).with_seed(seed));
            let demand = gen.next_iteration();
            let greedy = planner.plan(&demand).predicted.total();
            let (_, exact) = exhaustive_best_layout(&topo, &demand, 2, &tiny_params());
            let gap = greedy / exact.total();
            worst_gap = worst_gap.max(gap);
            assert!(
                gap < 1.35,
                "seed {seed}: greedy {greedy} vs exact {} (gap {gap:.3})",
                exact.total()
            );
        }
        // And usually it is *very* close.
        assert!(worst_gap < 1.35);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn refuses_large_instances() {
        let topo = Topology::paper_cluster();
        let r = RoutingMatrix::zeros(32, 8).unwrap();
        let _ = exhaustive_best_layout(&topo, &r, 2, &tiny_params());
    }
}
