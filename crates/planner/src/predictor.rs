//! Load prediction for the asynchronous layout tuner.
//!
//! Per the overall workflow (Fig. 7), the expert layout tuner runs on
//! the CPU while the GPU computes: it receives the *current* layer's
//! routing information plus "historical data from previous iterations"
//! and produces the re-layout strategy for the **next** iteration of
//! that layer. The layout a layer executes is therefore one iteration
//! stale. The [`Predictor`] trait is the seam for anything that bridges
//! that staleness:
//!
//! * [`LoadPredictor`] smooths it with an exponential moving average
//!   over routing matrices (the paper's operating point);
//! * [`ReplayPredictor`] eliminates it when demand is *replayable* — RL
//!   post-training re-visits the same prompts across rollout→train
//!   epochs, so a recorded [`RoutingTrace`] is near-perfect foresight
//!   (ReLibra / "Harnessing Routing Foresight");
//! * [`AnyPredictor`] is the serializable closed sum the LAER system
//!   checkpoints, selected by [`PredictorKind`] in `PlannerConfig`.

use laer_cluster::{DeviceId, ExpertId};
use laer_routing::{RoutingMatrix, RoutingTrace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Typed failure from [`Predictor::observe`]: the planner paths are
/// panic-free (workspace `unwrap_used` lint), so a routing matrix whose
/// shape disagrees with history is reported, not asserted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictError {
    /// The observed matrix shape differs from previous observations.
    ShapeChanged {
        /// (devices, experts) established by earlier observations.
        expected: (usize, usize),
        /// (devices, experts) of the offending observation.
        got: (usize, usize),
    },
}

impl std::fmt::Display for PredictError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PredictError::ShapeChanged { expected, got } => write!(
                f,
                "shape changed: expected {}x{} routing matrix, got {}x{}",
                expected.0, expected.1, got.0, got.1
            ),
        }
    }
}

impl std::error::Error for PredictError {}

/// Demand predictor interface for the asynchronous tuner (Fig. 7).
///
/// The tuner calls [`observe`](Predictor::observe) with each executed
/// iteration's routing matrix and [`predict`](Predictor::predict) for
/// the demand it should plan the *next* iteration against.
pub trait Predictor {
    /// Feeds one iteration's observed routing matrix.
    fn observe(&mut self, observed: &RoutingMatrix) -> Result<(), PredictError>;

    /// Predicted routing matrix for the next iteration, or `None` when
    /// no prediction is available yet.
    fn predict(&self) -> Option<RoutingMatrix>;

    /// Whether [`predict`](Predictor::predict) would return a matrix.
    fn is_warm(&self) -> bool;
}

/// Exponential-moving-average predictor over routing matrices.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadPredictor {
    /// Smoothing factor in (0, 1]; 1.0 = use last iteration verbatim.
    alpha: f64,
    state: Option<Vec<f64>>,
    devices: usize,
    experts: usize,
}

impl LoadPredictor {
    /// Creates a predictor with smoothing factor `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not in `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Self {
            alpha,
            state: None,
            devices: 0,
            experts: 0,
        }
    }

    /// The paper's operating point: recent iterations dominate (load
    /// autocorrelation is high, Fig. 1a), with mild smoothing against
    /// per-iteration jitter.
    pub fn default_ema() -> Self {
        Self::new(0.75)
    }

    /// Whether the predictor has observed at least one iteration.
    pub fn is_warm(&self) -> bool {
        self.state.is_some()
    }

    /// Feeds one iteration's observed routing matrix.
    ///
    /// Returns [`PredictError::ShapeChanged`] if the shape differs from
    /// previous observations; the EMA state is left untouched.
    pub fn observe(&mut self, observed: &RoutingMatrix) -> Result<(), PredictError> {
        let (d, e) = (observed.num_devices(), observed.num_experts());
        match &mut self.state {
            None => {
                self.devices = d;
                self.experts = e;
                self.state = Some(
                    (0..d)
                        .flat_map(|i| observed.row(DeviceId::new(i)).to_vec())
                        .map(|v| v as f64)
                        .collect(),
                );
            }
            Some(state) => {
                if (d, e) != (self.devices, self.experts) {
                    return Err(PredictError::ShapeChanged {
                        expected: (self.devices, self.experts),
                        got: (d, e),
                    });
                }
                for (idx, slot) in state.iter_mut().enumerate() {
                    let v = observed.row(DeviceId::new(idx / e))[idx % e] as f64;
                    *slot = self.alpha * v + (1.0 - self.alpha) * *slot;
                }
            }
        }
        Ok(())
    }

    /// Predicted routing matrix for the next iteration (rounded EMA).
    ///
    /// Returns `None` before the first observation.
    pub fn predict(&self) -> Option<RoutingMatrix> {
        let state = self.state.as_ref()?;
        let mut r = RoutingMatrix::zeros(self.devices, self.experts)
            .unwrap_or_else(|_| unreachable!("observed shapes are non-empty"));
        for (idx, &v) in state.iter().enumerate() {
            r.set(
                DeviceId::new(idx / self.experts),
                ExpertId::new(idx % self.experts),
                v.round().max(0.0) as u64,
            );
        }
        Some(r)
    }
}

impl Predictor for LoadPredictor {
    fn observe(&mut self, observed: &RoutingMatrix) -> Result<(), PredictError> {
        LoadPredictor::observe(self, observed)
    }

    fn predict(&self) -> Option<RoutingMatrix> {
        LoadPredictor::predict(self)
    }

    fn is_warm(&self) -> bool {
        LoadPredictor::is_warm(self)
    }
}

/// Foresight predictor replaying a recorded [`RoutingTrace`].
///
/// Each [`observe`](Predictor::observe) advances a cursor through the
/// trace; [`predict`](Predictor::predict) serves the *next* recorded
/// iteration — exact demand foresight when the workload re-executes the
/// recorded prompts in order (RL train phases over rollout traces). A
/// `noise` knob models rollout→train mismatch by perturbing each served
/// cell deterministically, and past the end of the trace the predictor
/// degrades gracefully to the EMA it has been feeding all along.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplayPredictor {
    trace: RoutingTrace,
    /// Iterations observed so far; `predict` serves `trace[cursor]`.
    cursor: usize,
    /// Relative per-cell perturbation amplitude in [0, 1]; 0 replays
    /// recorded matrices verbatim.
    noise: f64,
    noise_seed: u64,
    fallback: LoadPredictor,
}

impl ReplayPredictor {
    /// Creates a replay predictor over `trace`.
    ///
    /// `noise` is the relative mismatch amplitude (0 = verbatim replay)
    /// and `noise_seed` makes the perturbation stream deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `noise` is not in `[0, 1]`.
    pub fn new(trace: RoutingTrace, noise: f64, noise_seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&noise), "noise must be in [0, 1]");
        Self {
            trace,
            cursor: 0,
            noise,
            noise_seed,
            fallback: LoadPredictor::default_ema(),
        }
    }

    /// Iterations of the recorded trace still ahead of the cursor.
    pub fn remaining(&self) -> usize {
        self.trace.len().saturating_sub(self.cursor)
    }

    /// Whether the next prediction comes from the recorded trace (vs
    /// the EMA fallback past the trace end).
    pub fn serving_trace(&self) -> bool {
        self.cursor < self.trace.len()
    }

    /// Serves `trace[cursor]`, perturbed when `noise > 0`.
    fn serve(&self, index: usize) -> Option<RoutingMatrix> {
        let recorded = self.trace.get(index)?;
        if self.noise == 0.0 {
            return Some(recorded.clone());
        }
        let mut rng = StdRng::seed_from_u64(
            self.noise_seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let (d, e) = (recorded.num_devices(), recorded.num_experts());
        let mut out = RoutingMatrix::zeros(d, e)
            .unwrap_or_else(|_| unreachable!("recorded shapes are non-empty"));
        for dev in 0..d {
            for exp in 0..e {
                let v = recorded.get(DeviceId::new(dev), ExpertId::new(exp)) as f64;
                let factor = 1.0 + self.noise * rng.gen_range(-1.0f64..1.0);
                out.set(
                    DeviceId::new(dev),
                    ExpertId::new(exp),
                    (v * factor).round().max(0.0) as u64,
                );
            }
        }
        Some(out)
    }
}

impl Predictor for ReplayPredictor {
    /// Advances the replay cursor and feeds the EMA fallback.
    ///
    /// The cursor advances unconditionally — replay position is keyed
    /// by iteration count, not matrix contents — so a shape error from
    /// the fallback still leaves the trace in sync with execution.
    fn observe(&mut self, observed: &RoutingMatrix) -> Result<(), PredictError> {
        self.cursor += 1;
        self.fallback.observe(observed)
    }

    fn predict(&self) -> Option<RoutingMatrix> {
        self.serve(self.cursor).or_else(|| self.fallback.predict())
    }

    fn is_warm(&self) -> bool {
        self.serving_trace() || self.fallback.is_warm()
    }
}

/// Closed, serializable sum of the predictor implementations, so the
/// LAER system's per-layer state (and its checkpoints) can hold either
/// without generics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum AnyPredictor {
    /// EMA smoothing of observed demand ([`LoadPredictor`]).
    Ema(LoadPredictor),
    /// Recorded-trace foresight ([`ReplayPredictor`]).
    Replay(ReplayPredictor),
}

impl AnyPredictor {
    /// The paper's default: EMA with `alpha = 0.75`.
    pub fn default_ema() -> Self {
        AnyPredictor::Ema(LoadPredictor::default_ema())
    }

    /// Which [`PredictorKind`] this predictor is.
    pub fn kind(&self) -> PredictorKind {
        match self {
            AnyPredictor::Ema(_) => PredictorKind::Ema,
            AnyPredictor::Replay(_) => PredictorKind::Replay,
        }
    }

    /// Whether the next prediction is served from a recorded trace.
    pub fn serving_trace(&self) -> bool {
        match self {
            AnyPredictor::Ema(_) => false,
            AnyPredictor::Replay(r) => r.serving_trace(),
        }
    }
}

impl Predictor for AnyPredictor {
    fn observe(&mut self, observed: &RoutingMatrix) -> Result<(), PredictError> {
        match self {
            AnyPredictor::Ema(p) => Predictor::observe(p, observed),
            AnyPredictor::Replay(p) => p.observe(observed),
        }
    }

    fn predict(&self) -> Option<RoutingMatrix> {
        match self {
            AnyPredictor::Ema(p) => Predictor::predict(p),
            AnyPredictor::Replay(p) => Predictor::predict(p),
        }
    }

    fn is_warm(&self) -> bool {
        match self {
            AnyPredictor::Ema(p) => Predictor::is_warm(p),
            AnyPredictor::Replay(p) => Predictor::is_warm(p),
        }
    }
}

/// Which demand predictor the planner configuration selects.
///
/// `Replay` additionally needs a recorded trace installed on the
/// consuming system (`LaerSystem::with_replay`); until one is, systems
/// fall back to EMA behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum PredictorKind {
    /// Exponential moving average of observed demand (the paper).
    #[default]
    Ema,
    /// Recorded routing-trace foresight (RL replay workloads).
    Replay,
}

impl PredictorKind {
    /// Stable lowercase identifier used in artifact/journal labels.
    pub fn id(self) -> &'static str {
        match self {
            PredictorKind::Ema => "ema",
            PredictorKind::Replay => "replay",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laer_routing::{RoutingGenerator, RoutingGeneratorConfig};

    fn matrix(vals: &[u64]) -> RoutingMatrix {
        RoutingMatrix::from_rows(2, 2, vals.to_vec()).unwrap()
    }

    #[test]
    fn first_observation_is_identity() {
        let mut p = LoadPredictor::new(0.5);
        assert!(!p.is_warm());
        assert!(p.predict().is_none());
        p.observe(&matrix(&[10, 20, 30, 40])).unwrap();
        assert!(p.is_warm());
        assert_eq!(p.predict().unwrap(), matrix(&[10, 20, 30, 40]));
    }

    #[test]
    fn ema_blends_history() {
        let mut p = LoadPredictor::new(0.5);
        p.observe(&matrix(&[10, 0, 0, 0])).unwrap();
        p.observe(&matrix(&[30, 0, 0, 0])).unwrap();
        // 0.5*30 + 0.5*10 = 20.
        assert_eq!(
            p.predict().unwrap().get(DeviceId::new(0), ExpertId::new(0)),
            20
        );
    }

    #[test]
    fn alpha_one_tracks_last() {
        let mut p = LoadPredictor::new(1.0);
        p.observe(&matrix(&[10, 20, 30, 40])).unwrap();
        p.observe(&matrix(&[1, 2, 3, 4])).unwrap();
        assert_eq!(p.predict().unwrap(), matrix(&[1, 2, 3, 4]));
    }

    /// On the calibrated synthetic trace, EMA prediction tracks the next
    /// iteration's expert loads far better than a uniform guess — the
    /// property that makes one-iteration-stale layouts effective.
    #[test]
    fn prediction_beats_uniform_on_synthetic_trace() {
        let mut gen = RoutingGenerator::new(RoutingGeneratorConfig::new(8, 8, 8192).with_seed(21));
        let mut p = LoadPredictor::default_ema();
        let mut err_pred = 0.0f64;
        let mut err_uniform = 0.0f64;
        p.observe(&gen.next_iteration()).unwrap();
        for _ in 0..30 {
            let next = gen.next_iteration();
            let predicted = p.predict().expect("warm").expert_loads();
            let actual = next.expert_loads();
            let uniform = next.total() as f64 / actual.len() as f64;
            for (pr, ac) in predicted.iter().zip(&actual) {
                err_pred += (*pr as f64 - *ac as f64).abs();
            }
            for ac in &actual {
                err_uniform += (uniform - *ac as f64).abs();
            }
            p.observe(&next).unwrap();
        }
        assert!(
            err_pred < err_uniform * 0.5,
            "EMA error {err_pred:.0} should beat uniform {err_uniform:.0}"
        );
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_panics() {
        let _ = LoadPredictor::new(0.0);
    }

    /// Mid-run shape changes are a typed error, not a panic, and leave
    /// the EMA state untouched.
    #[test]
    fn shape_change_is_typed_error() {
        let mut p = LoadPredictor::new(0.5);
        p.observe(&matrix(&[1, 2, 3, 4])).unwrap();
        let err = p
            .observe(&RoutingMatrix::zeros(3, 2).unwrap())
            .expect_err("shape change must be reported");
        assert_eq!(
            err,
            PredictError::ShapeChanged {
                expected: (2, 2),
                got: (3, 2),
            }
        );
        assert!(err.to_string().contains("shape changed"));
        // State survives: the predictor still serves the old shape.
        assert_eq!(p.predict().unwrap(), matrix(&[1, 2, 3, 4]));
    }

    /// The EMA behind the `Predictor` trait object is bit-identical to
    /// the concrete `LoadPredictor` on a fixed seed — the refactor is
    /// behaviour-preserving.
    #[test]
    fn ema_behind_trait_is_bit_identical() {
        let mut gen = RoutingGenerator::new(RoutingGeneratorConfig::new(4, 8, 4096).with_seed(7));
        let mut concrete = LoadPredictor::default_ema();
        let mut any = AnyPredictor::default_ema();
        let boxed: &mut dyn Predictor = &mut any;
        for _ in 0..20 {
            let m = gen.next_iteration();
            concrete.observe(&m).unwrap();
            boxed.observe(&m).unwrap();
            assert_eq!(concrete.predict(), boxed.predict());
            assert_eq!(concrete.is_warm(), boxed.is_warm());
        }
    }

    fn recorded_trace(iters: usize) -> RoutingTrace {
        let cfg = RoutingGeneratorConfig::new(4, 8, 4096).with_seed(11);
        RoutingTrace::record(cfg, iters)
    }

    /// At `noise = 0` replay serves the recorded matrices verbatim:
    /// after observing iteration `i`, the prediction for `i + 1` is
    /// exactly the recorded demand of `i + 1`.
    #[test]
    fn replay_serves_recorded_trace_verbatim() {
        let trace = recorded_trace(6);
        let mut p = ReplayPredictor::new(trace.clone(), 0.0, 0);
        // Before any observation, replay predicts the first iteration.
        assert_eq!(p.predict().as_ref(), trace.get(0));
        for i in 0..trace.len() - 1 {
            p.observe(trace.get(i).unwrap()).unwrap();
            assert_eq!(p.predict().as_ref(), trace.get(i + 1));
        }
    }

    /// Past the end of the trace, replay degrades to the EMA it has
    /// been feeding all along instead of going cold.
    #[test]
    fn replay_falls_back_to_ema_past_trace_end() {
        let trace = recorded_trace(3);
        let mut p = ReplayPredictor::new(trace.clone(), 0.0, 0);
        let mut ema = LoadPredictor::default_ema();
        for i in 0..trace.len() {
            let m = trace.get(i).unwrap();
            p.observe(m).unwrap();
            ema.observe(m).unwrap();
        }
        assert!(!p.serving_trace());
        assert!(p.is_warm());
        assert_eq!(p.predict(), ema.predict());
    }

    /// Noise perturbs the served matrix but is deterministic in the
    /// seed and leaves the verbatim path untouched at 0.
    #[test]
    fn replay_noise_is_deterministic_and_bounded() {
        let trace = recorded_trace(4);
        let a = ReplayPredictor::new(trace.clone(), 0.25, 99);
        let b = ReplayPredictor::new(trace.clone(), 0.25, 99);
        let (pa, pb) = (a.predict().unwrap(), b.predict().unwrap());
        assert_eq!(pa, pb, "same seed, same perturbation");
        let recorded = trace.get(0).unwrap();
        assert_ne!(&pa, recorded, "noise must actually perturb");
        for dev in 0..recorded.num_devices() {
            for exp in 0..recorded.num_experts() {
                let v = recorded.get(DeviceId::new(dev), ExpertId::new(exp)) as f64;
                let got = pa.get(DeviceId::new(dev), ExpertId::new(exp)) as f64;
                assert!(
                    (got - v).abs() <= v * 0.25 + 1.0,
                    "cell ({dev},{exp}) moved {v} -> {got}, beyond the 25% bound"
                );
            }
        }
    }

    /// A replay predictor round-trips through serde — the LAER system
    /// checkpoints its per-layer predictors.
    #[test]
    fn any_predictor_serde_round_trip() {
        let trace = recorded_trace(2);
        let mut p = AnyPredictor::Replay(ReplayPredictor::new(trace.clone(), 0.0, 3));
        p.observe(trace.get(0).unwrap()).unwrap();
        let json = serde_json::to_string(&p).unwrap();
        let back: AnyPredictor = serde_json::from_str(&json).unwrap();
        assert_eq!(back.kind(), PredictorKind::Replay);
        assert_eq!(p.predict(), back.predict());
    }

    #[test]
    fn predictor_kind_defaults_to_ema_with_stable_ids() {
        assert_eq!(PredictorKind::default(), PredictorKind::Ema);
        assert_eq!(PredictorKind::Ema.id(), "ema");
        assert_eq!(PredictorKind::Replay.id(), "replay");
    }
}
