//! Load prediction for the asynchronous layout tuner.
//!
//! Per the overall workflow (Fig. 7), the expert layout tuner runs on
//! the CPU while the GPU computes: it receives the *current* layer's
//! routing information plus "historical data from previous iterations"
//! and produces the re-layout strategy for the **next** iteration of
//! that layer. The layout a layer executes is therefore one iteration
//! stale; [`LoadPredictor`] smooths that staleness with an exponential
//! moving average over routing matrices.

use laer_cluster::{DeviceId, ExpertId};
use laer_routing::RoutingMatrix;
use serde::{Deserialize, Serialize};

/// Exponential-moving-average predictor over routing matrices.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadPredictor {
    /// Smoothing factor in (0, 1]; 1.0 = use last iteration verbatim.
    alpha: f64,
    state: Option<Vec<f64>>,
    devices: usize,
    experts: usize,
}

impl LoadPredictor {
    /// Creates a predictor with smoothing factor `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not in `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Self {
            alpha,
            state: None,
            devices: 0,
            experts: 0,
        }
    }

    /// The paper's operating point: recent iterations dominate (load
    /// autocorrelation is high, Fig. 1a), with mild smoothing against
    /// per-iteration jitter.
    pub fn default_ema() -> Self {
        Self::new(0.75)
    }

    /// Whether the predictor has observed at least one iteration.
    pub fn is_warm(&self) -> bool {
        self.state.is_some()
    }

    /// Feeds one iteration's observed routing matrix.
    ///
    /// # Panics
    ///
    /// Panics if the shape differs from previous observations.
    pub fn observe(&mut self, observed: &RoutingMatrix) {
        let (d, e) = (observed.num_devices(), observed.num_experts());
        match &mut self.state {
            None => {
                self.devices = d;
                self.experts = e;
                self.state = Some(
                    (0..d)
                        .flat_map(|i| observed.row(DeviceId::new(i)).to_vec())
                        .map(|v| v as f64)
                        .collect(),
                );
            }
            Some(state) => {
                assert_eq!((d, e), (self.devices, self.experts), "shape changed");
                for (idx, slot) in state.iter_mut().enumerate() {
                    let v = observed.row(DeviceId::new(idx / e))[idx % e] as f64;
                    *slot = self.alpha * v + (1.0 - self.alpha) * *slot;
                }
            }
        }
    }

    /// Predicted routing matrix for the next iteration (rounded EMA).
    ///
    /// Returns `None` before the first observation.
    pub fn predict(&self) -> Option<RoutingMatrix> {
        let state = self.state.as_ref()?;
        let mut r = RoutingMatrix::zeros(self.devices, self.experts)
            .unwrap_or_else(|_| unreachable!("observed shapes are non-empty"));
        for (idx, &v) in state.iter().enumerate() {
            r.set(
                DeviceId::new(idx / self.experts),
                ExpertId::new(idx % self.experts),
                v.round().max(0.0) as u64,
            );
        }
        Some(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(vals: &[u64]) -> RoutingMatrix {
        RoutingMatrix::from_rows(2, 2, vals.to_vec()).unwrap()
    }

    #[test]
    fn first_observation_is_identity() {
        let mut p = LoadPredictor::new(0.5);
        assert!(!p.is_warm());
        assert!(p.predict().is_none());
        p.observe(&matrix(&[10, 20, 30, 40]));
        assert!(p.is_warm());
        assert_eq!(p.predict().unwrap(), matrix(&[10, 20, 30, 40]));
    }

    #[test]
    fn ema_blends_history() {
        let mut p = LoadPredictor::new(0.5);
        p.observe(&matrix(&[10, 0, 0, 0]));
        p.observe(&matrix(&[30, 0, 0, 0]));
        // 0.5*30 + 0.5*10 = 20.
        assert_eq!(
            p.predict().unwrap().get(DeviceId::new(0), ExpertId::new(0)),
            20
        );
    }

    #[test]
    fn alpha_one_tracks_last() {
        let mut p = LoadPredictor::new(1.0);
        p.observe(&matrix(&[10, 20, 30, 40]));
        p.observe(&matrix(&[1, 2, 3, 4]));
        assert_eq!(p.predict().unwrap(), matrix(&[1, 2, 3, 4]));
    }

    /// On the calibrated synthetic trace, EMA prediction tracks the next
    /// iteration's expert loads far better than a uniform guess — the
    /// property that makes one-iteration-stale layouts effective.
    #[test]
    fn prediction_beats_uniform_on_synthetic_trace() {
        use laer_routing::{RoutingGenerator, RoutingGeneratorConfig};
        let mut gen = RoutingGenerator::new(RoutingGeneratorConfig::new(8, 8, 8192).with_seed(21));
        let mut p = LoadPredictor::default_ema();
        let mut err_pred = 0.0f64;
        let mut err_uniform = 0.0f64;
        p.observe(&gen.next_iteration());
        for _ in 0..30 {
            let next = gen.next_iteration();
            let predicted = p.predict().expect("warm").expert_loads();
            let actual = next.expert_loads();
            let uniform = next.total() as f64 / actual.len() as f64;
            for (pr, ac) in predicted.iter().zip(&actual) {
                err_pred += (*pr as f64 - *ac as f64).abs();
            }
            for ac in &actual {
                err_uniform += (uniform - *ac as f64).abs();
            }
            p.observe(&next);
        }
        assert!(
            err_pred < err_uniform * 0.5,
            "EMA error {err_pred:.0} should beat uniform {err_uniform:.0}"
        );
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_panics() {
        let _ = LoadPredictor::new(0.0);
    }

    #[test]
    #[should_panic(expected = "shape changed")]
    fn shape_change_panics() {
        let mut p = LoadPredictor::new(0.5);
        p.observe(&matrix(&[1, 2, 3, 4]));
        p.observe(&RoutingMatrix::zeros(3, 2).unwrap());
    }
}
