//! The LAER-MoE load-balancing planner (Sec. 3.2 of the paper).
//!
//! The planner answers two questions every iteration:
//!
//! 1. **expert re-layout** — which experts should each device restore
//!    during FSEP unshard (`A[i][j]`, the re-layout strategy of Tab. 1)?
//! 2. **token routing** — to which replica should each token go
//!    (`S[i][j][k]`)?
//!
//! It solves them with the paper's decomposition:
//!
//! * [`lite_routing`] — Alg. 3: the synchronous, topology-aware token
//!   dispatcher (intra-node replicas first, global replicas otherwise);
//! * [`replica`] — Alg. 4: priority-queue replica allocation by average
//!   load;
//! * [`relocation`] — Alg. 1: greedy topology-aware placement of replicas
//!   onto devices;
//! * [`tuner`] — Alg. 2: the asynchronous expert-layout tuner evaluating a
//!   candidate set ε of replica schemes (proportional, even, random
//!   perturbations) under the cost model and picking the cheapest;
//! * [`cost`] — the joint objective `T = T_comm + T_comp` of Eqs. 2–4;
//! * [`exact`] — a brute-force layout enumerator for tiny instances, used
//!   by tests to bound the greedy optimality gap;
//! * [`parallel`] — multi-threaded candidate evaluation (the paper's
//!   multi-process CPU solver, Sec. 4);
//! * [`delta`] — incremental Eq. 2 evaluation for the refine/exact hot
//!   paths: a move re-routes only the affected experts' columns, with
//!   results bit-identical to `lite_route` + `time_cost` from scratch.
//!
//! # Example
//!
//! ```
//! use laer_cluster::Topology;
//! use laer_planner::{CostParams, Planner, PlannerConfig};
//! use laer_routing::{RoutingGenerator, RoutingGeneratorConfig};
//!
//! # fn main() {
//! let topo = Topology::single_node(4).unwrap();
//! let mut gen = RoutingGenerator::new(RoutingGeneratorConfig::new(4, 8, 4096).with_seed(1));
//! let planner = Planner::new(PlannerConfig::new(2), CostParams::mixtral_8x7b(), topo);
//! let plan = planner.plan(&gen.next_iteration());
//! assert_eq!(plan.layout.total_replicas(), 4 * 2);
//! # }
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

pub mod cost;
pub mod delta;
pub mod exact;
pub mod layout;
pub mod lite_routing;
pub mod parallel;
pub mod predictor;
pub mod refine;
pub mod relocation;
pub mod replica;
pub mod tuner;

mod token_routing;

pub use cost::{time_cost, CostBreakdown, CostParams};
pub use delta::IncrementalCost;
pub use exact::exhaustive_best_layout;
pub use layout::{ExpertLayout, LayoutError};
pub use lite_routing::{lite_route, lite_route_into, lite_route_with, RouteScratch};
pub use parallel::{plan_layers_parallel, plan_parallel, plan_parallel_indexed};
pub use predictor::{
    AnyPredictor, LoadPredictor, PredictError, Predictor, PredictorKind, ReplayPredictor,
};
pub use refine::{refine_layout, refine_layout_scratch, RefinedPlan};
pub use relocation::{expert_relocation, expert_relocation_on, relocation_moves, RelocationMove};
pub use replica::{even_replicas, replica_allocation};
pub use token_routing::{RoutingViolation, TokenRouting};
pub use tuner::{Plan, PlanError, Planner, PlannerConfig, ReplicaScheme};
