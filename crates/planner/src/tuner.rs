//! The expert layout tuner — Alg. 2 of the paper.
//!
//! Builds a candidate set `ε` of replica schemes (priority-queue
//! proportional allocation, even allocation, and random perturbations of
//! members already in the set), solves each with the greedy relocation
//! (Alg. 1), routes under lite routing (Alg. 3), scores with the time
//! model (Eq. 2) and keeps the best.

use crate::cost::{time_cost, CostBreakdown, CostParams};
use crate::layout::ExpertLayout;
#[cfg(test)]
use crate::lite_routing::lite_route;
use crate::lite_routing::{lite_route_with, RouteScratch};
use crate::relocation::{expert_relocation, expert_relocation_on};
use crate::replica::{even_replicas, replica_allocation};
use crate::token_routing::TokenRouting;
use laer_cluster::{DegradedView, Topology};
use laer_routing::RoutingMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;
use std::time::{Duration, Instant};

// Test-only counter of `Planner::evaluate_scheme` calls, used to prove
// that candidate deduplication actually skips redundant evaluations.
#[cfg(test)]
thread_local! {
    static EVAL_COUNT: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Resets the test-only evaluation counter (current thread).
#[cfg(test)]
pub(crate) fn reset_eval_count() {
    EVAL_COUNT.with(|c| c.set(0));
}

/// Reads the test-only evaluation counter (current thread).
#[cfg(test)]
pub(crate) fn eval_count() -> usize {
    EVAL_COUNT.with(|c| c.get())
}

/// Drops duplicate replica schemes, keeping the first occurrence of each.
///
/// Safe to apply before the Alg. 2 evaluation loop: duplicates produce
/// bit-identical [`Plan`]s and the best-candidate comparison is a strict
/// `<` (first occurrence wins ties), so skipping repeats can never change
/// which plan is returned.
pub(crate) fn dedup_schemes(schemes: Vec<Vec<usize>>) -> Vec<Vec<usize>> {
    let mut seen: HashSet<Vec<usize>> = HashSet::with_capacity(schemes.len());
    schemes
        .into_iter()
        .filter(|s| seen.insert(s.clone()))
        .collect()
}

/// Failure modes of the fault-aware planning entry points
/// ([`Planner::plan_within`], [`Planner::plan_degraded`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The solve budget expired before any candidate was evaluated;
    /// the caller should fall back to the previous iteration's layout
    /// (the staleness path of Fig. 7).
    DeadlineExceeded {
        /// The budget that expired.
        budget: Duration,
    },
    /// After device failures, the surviving slots cannot give every
    /// expert a replica — the run must abort (constraint 4 of Tab. 1 is
    /// unsatisfiable).
    InsufficientCapacity {
        /// Surviving device count.
        survivors: usize,
        /// Per-device capacity `C`.
        capacity: usize,
        /// Expert count `E`.
        experts: usize,
    },
    /// Every device has failed.
    NoSurvivors,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::DeadlineExceeded { budget } => {
                write!(
                    f,
                    "planner deadline of {budget:?} expired before any candidate solved"
                )
            }
            PlanError::InsufficientCapacity {
                survivors,
                capacity,
                experts,
            } => write!(
                f,
                "{survivors} survivors x capacity {capacity} cannot host {experts} experts"
            ),
            PlanError::NoSurvivors => write!(f, "no surviving devices"),
        }
    }
}

impl std::error::Error for PlanError {}

/// Which base replica schemes seed the candidate set — [`Self::Both`] is
/// the full Alg. 2; the single-scheme variants are the `pq` / `even`
/// ablations of Fig. 12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReplicaScheme {
    /// Proportional (Alg. 4) + even + perturbations (full Alg. 2).
    Both,
    /// Priority-queue proportional allocation only.
    PqOnly,
    /// Even allocation only.
    EvenOnly,
}

/// Planner configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlannerConfig {
    /// Expert capacity per device `C`.
    pub capacity: usize,
    /// Candidate-set size `ε` (the paper fixes `|ε| = 2` for Fig. 11 and
    /// allows larger sets with random perturbations).
    pub epsilon: usize,
    /// Replica-scheme selection (ablations use the single-scheme modes).
    pub scheme: ReplicaScheme,
    /// Seed for the perturbation RNG.
    pub seed: u64,
    /// Disables candidate-scheme deduplication before evaluation.
    /// Alg. 2's random perturbations frequently collide (a perturbation
    /// of an all-ones scheme is a no-op, and independent draws can land
    /// on the same scheme), so by default identical candidates are
    /// evaluated once — skipping a duplicate can never change the best
    /// plan because ties break toward the first occurrence. The flag
    /// exists for A/B measurement (`bench_planner`).
    #[serde(default)]
    pub dedup_disabled: bool,
    /// Chunk count of the executor's chunked dispatch/combine pipeline
    /// that candidate plans are priced for
    /// ([`CostBreakdown::pipelined`]). `0` and `1` both mean the
    /// whole-iteration schedule; `0` is the serde default so configs
    /// serialized before the knob existed keep their meaning.
    #[serde(default)]
    pub num_chunks: usize,
    /// Which demand predictor drives the asynchronous tuner
    /// ([`crate::Predictor`]): the paper's EMA, or recorded-trace
    /// replay foresight for RL post-training workloads. `Ema` is the
    /// serde default so configs serialized before the trait existed
    /// keep their meaning. Both kinds flow through the same
    /// [`Planner::evaluate_scheme`] / [`Planner::plan_degraded`] paths
    /// — only the demand they are handed differs.
    #[serde(default)]
    pub predictor: crate::PredictorKind,
}

impl PlannerConfig {
    /// Default configuration: full scheme set, `ε = 4`, seed 0,
    /// duplicate candidates evaluated once, whole-iteration pricing.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            epsilon: 4,
            scheme: ReplicaScheme::Both,
            seed: 0,
            dedup_disabled: false,
            num_chunks: 0,
            predictor: crate::PredictorKind::Ema,
        }
    }

    /// Selects the demand predictor kind the consuming system should
    /// drive the tuner with.
    pub fn with_predictor(mut self, predictor: crate::PredictorKind) -> Self {
        self.predictor = predictor;
        self
    }

    /// Sets the pipeline chunk count candidate plans are priced for
    /// (clamped to at least 1).
    pub fn with_num_chunks(mut self, num_chunks: usize) -> Self {
        self.num_chunks = num_chunks.max(1);
        self
    }

    /// Enables or disables candidate deduplication (on by default; the
    /// off switch exists for benchmarking the dedup win).
    pub fn with_dedup(mut self, dedup: bool) -> Self {
        self.dedup_disabled = !dedup;
        self
    }

    /// Sets the candidate-set size.
    pub fn with_epsilon(mut self, epsilon: usize) -> Self {
        self.epsilon = epsilon.max(1);
        self
    }

    /// Selects the replica scheme (for the Fig. 12 ablations).
    pub fn with_scheme(mut self, scheme: ReplicaScheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Sets the perturbation seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The planner's output for one MoE layer and iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Plan {
    /// Expert re-layout strategy `A`.
    pub layout: ExpertLayout,
    /// Token routing strategy `S` under lite routing.
    pub routing: TokenRouting,
    /// The objective value the tuner predicted for this plan.
    pub predicted: CostBreakdown,
}

/// The asynchronous expert layout tuner plus synchronous token
/// dispatcher, bundled (Sec. 3.2's "load balancing planner").
#[derive(Debug, Clone)]
pub struct Planner {
    cfg: PlannerConfig,
    cost: CostParams,
    topo: Topology,
}

impl Planner {
    /// Creates a planner for a fixed topology and cost model.
    pub fn new(cfg: PlannerConfig, cost: CostParams, topo: Topology) -> Self {
        Self { cfg, cost, topo }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PlannerConfig {
        &self.cfg
    }

    /// The cost parameters in use.
    pub fn cost_params(&self) -> &CostParams {
        &self.cost
    }

    /// The topology in use.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Builds the candidate replica schemes of Alg. 2 lines 1–7.
    pub fn candidate_schemes(&self, demand: &RoutingMatrix) -> Vec<Vec<usize>> {
        self.candidate_schemes_for(self.topo.num_devices(), demand)
    }

    /// Candidate schemes sized for `n` participating devices (`n` is the
    /// survivor count in degraded mode).
    fn candidate_schemes_for(&self, n: usize, demand: &RoutingMatrix) -> Vec<Vec<usize>> {
        let c = self.cfg.capacity;
        let loads = demand.expert_loads();
        let mut set: Vec<Vec<usize>> = Vec::new();
        match self.cfg.scheme {
            ReplicaScheme::Both => {
                set.push(replica_allocation(&loads, n, c));
                set.push(even_replicas(&loads, n, c));
            }
            ReplicaScheme::PqOnly => set.push(replica_allocation(&loads, n, c)),
            ReplicaScheme::EvenOnly => set.push(even_replicas(&loads, n, c)),
        }
        // Lines 5-7: random perturbations, deterministic in (seed, demand).
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ demand.total());
        while set.len() < self.cfg.epsilon {
            let base = set[rng.gen_range(0..set.len())].clone();
            set.push(perturb(base, &mut rng));
        }
        set.truncate(self.cfg.epsilon);
        set
    }

    /// Applies candidate deduplication unless the configuration turned it
    /// off (`dedup_disabled`). Public so external fan-out harnesses (the
    /// `bench::pool` scheme-per-worker path) evaluate exactly the
    /// candidate set the serial tuner would — duplicates cost the same
    /// and ties break toward the first occurrence, so dropping repeats
    /// never changes the chosen plan.
    pub fn unique_schemes(&self, schemes: Vec<Vec<usize>>) -> Vec<Vec<usize>> {
        if self.cfg.dedup_disabled {
            schemes
        } else {
            dedup_schemes(schemes)
        }
    }

    /// Alg. 2 lines 9–16: evaluates every candidate and returns the best
    /// plan.
    ///
    /// # Panics
    ///
    /// Panics if `demand`'s shapes disagree with the topology or the
    /// capacity cannot host every expert.
    pub fn plan(&self, demand: &RoutingMatrix) -> Plan {
        let loads = demand.expert_loads();
        let mut scratch = RouteScratch::new();
        let mut best: Option<Plan> = None;
        for replicas in self.unique_schemes(self.candidate_schemes(demand)) {
            let candidate =
                self.evaluate_scheme_inner(&replicas, &loads, demand, &mut scratch, None);
            let better = match &best {
                None => true,
                Some(b) => candidate.predicted.total() < b.predicted.total(),
            };
            if better {
                best = Some(candidate);
            }
        }
        match best {
            Some(plan) => plan,
            // Degenerate `epsilon = 0` configuration: solve the base
            // proportional scheme so `plan` stays total.
            None => {
                let rep = replica_allocation(&loads, self.topo.num_devices(), self.cfg.capacity);
                self.evaluate_scheme_inner(&rep, &loads, demand, &mut scratch, None)
            }
        }
    }

    /// [`Self::plan`] under a wall-clock solve budget — the Alg. 2 loop
    /// stops early once `budget` elapses, returning the best candidate
    /// found so far.
    ///
    /// Used by the training runner to model the planner host running out
    /// of its per-iteration slack: on [`PlanError::DeadlineExceeded`]
    /// (budget spent before even one candidate solved) the caller falls
    /// back to the previous iteration's layout via the staleness path.
    ///
    /// Note the *deadline check* is wall-clock, so which candidates get
    /// evaluated may vary run to run; deterministic experiments keep the
    /// deadline off and model planner loss as explicit
    /// `PlannerOutage` fault events instead.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::DeadlineExceeded`] if the budget expired
    /// before any candidate was evaluated.
    ///
    /// # Panics
    ///
    /// Panics if `demand`'s shapes disagree with the topology or the
    /// capacity cannot host every expert.
    pub fn plan_within(&self, demand: &RoutingMatrix, budget: Duration) -> Result<Plan, PlanError> {
        let start = Instant::now();
        let loads = demand.expert_loads();
        let mut scratch = RouteScratch::new();
        let mut best: Option<Plan> = None;
        for replicas in self.unique_schemes(self.candidate_schemes(demand)) {
            if start.elapsed() >= budget {
                break;
            }
            let candidate =
                self.evaluate_scheme_inner(&replicas, &loads, demand, &mut scratch, None);
            let better = match &best {
                None => true,
                Some(b) => candidate.predicted.total() < b.predicted.total(),
            };
            if better {
                best = Some(candidate);
            }
        }
        best.ok_or(PlanError::DeadlineExceeded { budget })
    }

    /// Alg. 2 over the surviving devices of a degraded cluster: replica
    /// schemes are sized to the survivor count, Alg. 1 places replicas
    /// on survivors only, and candidates are priced against the degraded
    /// network `view` so weakened links steer the layout.
    ///
    /// # Errors
    ///
    /// * [`PlanError::NoSurvivors`] if every device failed;
    /// * [`PlanError::InsufficientCapacity`] if the surviving slots
    ///   cannot give every expert at least one replica — the typed
    ///   "abort the run" condition.
    ///
    /// # Panics
    ///
    /// Panics if `demand`'s shapes disagree with the planner topology or
    /// `view` wraps a different topology.
    pub fn plan_degraded(
        &self,
        demand: &RoutingMatrix,
        view: &DegradedView,
    ) -> Result<Plan, PlanError> {
        assert_eq!(
            view.base().num_devices(),
            self.topo.num_devices(),
            "degraded view topology mismatch"
        );
        let survivors = view.survivors();
        if survivors.is_empty() {
            return Err(PlanError::NoSurvivors);
        }
        let experts = demand.num_experts();
        if survivors.len() * self.cfg.capacity < experts {
            return Err(PlanError::InsufficientCapacity {
                survivors: survivors.len(),
                capacity: self.cfg.capacity,
                experts,
            });
        }
        let loads = demand.expert_loads();
        let mut best: Option<Plan> = None;
        let mut schemes = self.candidate_schemes_for(survivors.len(), demand);
        if schemes.is_empty() {
            schemes.push(replica_allocation(
                &loads,
                survivors.len(),
                self.cfg.capacity,
            ));
        }
        let mut scratch = RouteScratch::new();
        for replicas in self.unique_schemes(schemes) {
            let layout =
                expert_relocation_on(&replicas, &loads, &self.topo, self.cfg.capacity, &survivors);
            let routing = lite_route_with(&self.topo, demand, &layout, &mut scratch);
            let predicted = time_cost(view, &routing, &self.cost).pipelined(self.cfg.num_chunks);
            let candidate = Plan {
                layout,
                routing,
                predicted,
            };
            let better = match &best {
                None => true,
                Some(b) => candidate.predicted.total() < b.predicted.total(),
            };
            if better {
                best = Some(candidate);
            }
        }
        best.ok_or(PlanError::NoSurvivors)
    }

    /// Evaluates one replica scheme: relocation → lite routing → cost.
    pub fn evaluate_scheme(
        &self,
        replicas: &[usize],
        expert_loads: &[u64],
        demand: &RoutingMatrix,
    ) -> Plan {
        self.evaluate_scheme_inner(
            replicas,
            expert_loads,
            demand,
            &mut RouteScratch::new(),
            None,
        )
    }

    /// The scheme-evaluation hot path: caller-held routing scratch (no
    /// per-candidate allocation) and an optional chunk-count override
    /// (`None` uses the configured `num_chunks`; `sweep_num_chunks`
    /// passes `Some(1)` to price once unpipelined and re-price per
    /// chunk count).
    pub(crate) fn evaluate_scheme_inner(
        &self,
        replicas: &[usize],
        expert_loads: &[u64],
        demand: &RoutingMatrix,
        scratch: &mut RouteScratch,
        num_chunks: Option<usize>,
    ) -> Plan {
        #[cfg(test)]
        EVAL_COUNT.with(|c| c.set(c.get() + 1));
        let chunks = num_chunks.unwrap_or(self.cfg.num_chunks);
        let layout = expert_relocation(replicas, expert_loads, &self.topo, self.cfg.capacity);
        let routing = lite_route_with(&self.topo, demand, &layout, scratch);
        let predicted = time_cost(&self.topo, &routing, &self.cost).pipelined(chunks);
        Plan {
            layout,
            routing,
            predicted,
        }
    }

    /// Returns this planner re-priced for a different executor chunk
    /// count (clamped to at least 1).
    pub fn with_num_chunks(mut self, num_chunks: usize) -> Self {
        self.cfg.num_chunks = num_chunks.max(1);
        self
    }

    /// Returns this planner with a different demand-predictor kind
    /// recorded in its configuration (the consuming system constructs
    /// the matching [`crate::Predictor`]).
    pub fn with_predictor(mut self, predictor: crate::PredictorKind) -> Self {
        self.cfg.predictor = predictor;
        self
    }

    /// Sweeps the executor's pipeline chunk count and returns the winner
    /// by predicted pipelined cost (strict `<`, first candidate wins
    /// ties — so the sweep is deterministic and, with `1` listed first,
    /// never picks a higher chunk count that the model prices
    /// identically).
    ///
    /// Each candidate scheme is solved and routed exactly **once** at
    /// whole-iteration pricing; chunk counts only re-price the resulting
    /// breakdown via [`CostBreakdown::pipelined`] (chunking changes
    /// neither relocation nor routing). This selects the identical
    /// `(chunk count, plan)` the per-chunk-count re-planning loop would
    /// — same candidate order, same strict-`<` comparisons on the same
    /// bit-exact totals — at `|schemes|` evaluations instead of
    /// `|chunks| · |schemes|`.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty, or if `demand`'s shapes disagree
    /// with the topology / capacity (as [`Self::plan`]).
    pub fn sweep_num_chunks(&self, demand: &RoutingMatrix, candidates: &[usize]) -> (usize, Plan) {
        assert!(!candidates.is_empty(), "need at least one chunk count");
        let loads = demand.expert_loads();
        let mut schemes = self.unique_schemes(self.candidate_schemes(demand));
        if schemes.is_empty() {
            // Degenerate `epsilon = 0`: `plan` falls back to the base
            // proportional scheme; mirror it so the sweep stays total.
            schemes.push(replica_allocation(
                &loads,
                self.topo.num_devices(),
                self.cfg.capacity,
            ));
        }
        let mut scratch = RouteScratch::new();
        let base: Vec<Plan> = schemes
            .iter()
            .map(|r| self.evaluate_scheme_inner(r, &loads, demand, &mut scratch, Some(1)))
            .collect();
        // (chunk count, scheme index, pipelined breakdown) of the winner.
        let mut best: Option<(usize, usize, CostBreakdown)> = None;
        for &raw in candidates {
            let chunks = raw.max(1);
            // Inner selection mirrors `plan`: first scheme with a
            // strictly lower pipelined total wins.
            let mut inner: Option<(usize, CostBreakdown)> = None;
            for (i, p) in base.iter().enumerate() {
                let priced = p.predicted.pipelined(chunks);
                let better = match &inner {
                    None => true,
                    Some((_, b)) => priced.total() < b.total(),
                };
                if better {
                    inner = Some((i, priced));
                }
            }
            let (i, priced) = match inner {
                Some(found) => found,
                None => unreachable!("schemes checked non-empty"),
            };
            let better = match &best {
                None => true,
                Some((_, _, b)) => priced.total() < b.total(),
            };
            if better {
                best = Some((chunks, i, priced));
            }
        }
        match best {
            Some((chunks, i, priced)) => {
                let chosen = &base[i];
                (
                    chunks,
                    Plan {
                        layout: chosen.layout.clone(),
                        routing: chosen.routing.clone(),
                        predicted: priced,
                    },
                )
            }
            None => unreachable!("candidates checked non-empty"),
        }
    }
}

/// Random perturbation of a replica scheme: move one replica from an
/// expert with ≥ 2 to a different expert (keeps total and ≥1 invariants).
fn perturb(mut replicas: Vec<usize>, rng: &mut StdRng) -> Vec<usize> {
    let e = replicas.len();
    if e < 2 {
        return replicas;
    }
    let donors: Vec<usize> = (0..e).filter(|&i| replicas[i] >= 2).collect();
    if donors.is_empty() {
        return replicas;
    }
    let from = donors[rng.gen_range(0..donors.len())];
    let mut to = rng.gen_range(0..e);
    if to == from {
        to = (to + 1) % e;
    }
    replicas[from] -= 1;
    replicas[to] += 1;
    replicas
}

#[cfg(test)]
mod tests {
    use super::*;
    use laer_routing::{RoutingGenerator, RoutingGeneratorConfig};

    fn planner(scheme: ReplicaScheme) -> Planner {
        Planner::new(
            PlannerConfig::new(2).with_scheme(scheme).with_epsilon(4),
            CostParams::mixtral_8x7b(),
            Topology::paper_cluster(),
        )
    }

    fn demand(seed: u64) -> RoutingMatrix {
        RoutingGenerator::new(RoutingGeneratorConfig::new(32, 8, 8192).with_seed(seed))
            .next_iteration()
    }

    #[test]
    fn plan_is_valid() {
        let p = planner(ReplicaScheme::Both);
        let d = demand(1);
        let plan = p.plan(&d);
        assert!(plan.layout.validate().is_ok());
        assert!(plan.routing.validate(&d, &plan.layout).is_ok());
        assert!(plan.predicted.total() > 0.0);
    }

    /// The tuner's plan must beat the fixed classic-EP layout on skewed
    /// demand — the core claim of Sec. 3.2's optimisation opportunity.
    #[test]
    fn beats_classic_ep_on_skewed_demand() {
        let p = planner(ReplicaScheme::Both);
        for seed in [1u64, 2, 3, 4, 5] {
            let d = demand(seed);
            let plan = p.plan(&d);
            let classic = ExpertLayout::classic_ep(32, 8, 2).unwrap();
            let classic_routing = lite_route(p.topology(), &d, &classic);
            let classic_cost = time_cost(p.topology(), &classic_routing, p.cost_params());
            assert!(
                plan.predicted.total() <= classic_cost.total() * 1.0001,
                "seed {seed}: planned {} vs classic {}",
                plan.predicted.total(),
                classic_cost.total()
            );
        }
    }

    /// Fig. 12 mechanism: with perturbations disabled, the multi-scheme
    /// candidate set (which contains both base schemes) is never worse
    /// than either single scheme alone.
    #[test]
    fn both_never_worse_than_single_schemes() {
        let mk = |scheme, eps| {
            Planner::new(
                PlannerConfig::new(2).with_scheme(scheme).with_epsilon(eps),
                CostParams::mixtral_8x7b(),
                Topology::paper_cluster(),
            )
        };
        let both = mk(ReplicaScheme::Both, 2);
        let pq = mk(ReplicaScheme::PqOnly, 1);
        let even = mk(ReplicaScheme::EvenOnly, 1);
        for seed in 1u64..6 {
            let d = demand(seed);
            let tb = both.plan(&d).predicted.total();
            let tp = pq.plan(&d).predicted.total();
            let te = even.plan(&d).predicted.total();
            assert!(tb <= tp + 1e-12, "seed {seed}: both {tb} vs pq {tp}");
            assert!(tb <= te + 1e-12, "seed {seed}: both {tb} vs even {te}");
        }
    }

    #[test]
    fn candidate_set_size_and_determinism() {
        let p = planner(ReplicaScheme::Both);
        let d = demand(7);
        let a = p.candidate_schemes(&d);
        let b = p.candidate_schemes(&d);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        let n_c = 32 * 2;
        for scheme in &a {
            assert_eq!(scheme.iter().sum::<usize>(), n_c);
            assert!(scheme.iter().all(|&r| r >= 1));
        }
    }

    /// 8 experts on 4 devices with `C = 2` leave exactly one slot per
    /// expert, so `even_replicas` is all-ones and `perturb` has no donor
    /// — every perturbed candidate collides with the base scheme. With
    /// dedup the planner must evaluate exactly once; without it, once per
    /// candidate. Both must return the same plan.
    #[test]
    fn duplicate_candidates_evaluate_once() {
        let topo = Topology::single_node(4).unwrap();
        let cfg = PlannerConfig::new(2)
            .with_scheme(ReplicaScheme::EvenOnly)
            .with_epsilon(4);
        let p = Planner::new(cfg.clone(), CostParams::mixtral_8x7b(), topo.clone());
        let d = RoutingGenerator::new(RoutingGeneratorConfig::new(4, 8, 1024).with_seed(11))
            .next_iteration();
        let schemes = p.candidate_schemes(&d);
        assert_eq!(schemes.len(), 4);
        assert!(
            schemes.iter().all(|s| *s == schemes[0]),
            "scenario must produce identical candidates"
        );

        reset_eval_count();
        let deduped = p.plan(&d);
        assert_eq!(eval_count(), 1, "dedup must evaluate each scheme once");

        let p_off = Planner::new(
            cfg.with_dedup(false),
            CostParams::mixtral_8x7b(),
            topo.clone(),
        );
        reset_eval_count();
        let raw = p_off.plan(&d);
        assert_eq!(eval_count(), 4, "dedup off must evaluate every candidate");
        assert_eq!(deduped, raw, "dedup must not change the chosen plan");

        // The budgeted and degraded paths share the same seen-set.
        reset_eval_count();
        let within = p
            .plan_within(&d, std::time::Duration::from_secs(60))
            .unwrap();
        assert_eq!(eval_count(), 1);
        assert_eq!(within, deduped);
        let nominal = p.plan_degraded(&d, &DegradedView::new(topo)).unwrap();
        assert_eq!(nominal.layout, deduped.layout);
    }

    #[test]
    fn dedup_schemes_keeps_first_occurrence_order() {
        let schemes = vec![
            vec![2, 1, 1],
            vec![1, 2, 1],
            vec![2, 1, 1],
            vec![1, 1, 2],
            vec![1, 2, 1],
        ];
        assert_eq!(
            dedup_schemes(schemes),
            vec![vec![2, 1, 1], vec![1, 2, 1], vec![1, 1, 2]]
        );
    }

    #[test]
    fn planner_config_dedup_default_round_trips() {
        let cfg = PlannerConfig::new(2);
        assert!(!cfg.dedup_disabled);
        // Pre-dedup serialized configs lack the field; `#[serde(default)]`
        // must fill it as "dedup on".
        let legacy = "{\"capacity\":2,\"epsilon\":4,\"scheme\":\"Both\",\"seed\":0}";
        let parsed: PlannerConfig = serde_json::from_str(legacy).unwrap();
        assert_eq!(parsed, cfg);
    }

    /// `num_chunks` defaults to the unchunked pricing and older
    /// serialized configs (no field) keep meaning unchunked.
    #[test]
    fn planner_config_num_chunks_defaults_to_unchunked() {
        let cfg = PlannerConfig::new(2);
        assert_eq!(cfg.num_chunks, 0);
        let legacy = "{\"capacity\":2,\"epsilon\":4,\"scheme\":\"Both\",\"seed\":0}";
        let parsed: PlannerConfig = serde_json::from_str(legacy).unwrap();
        assert_eq!(parsed.num_chunks, 0);
        assert_eq!(PlannerConfig::new(2).with_num_chunks(0).num_chunks, 1);
    }

    /// `predictor` defaults to the paper's EMA and older serialized
    /// configs (no field) keep meaning EMA.
    #[test]
    fn planner_config_predictor_defaults_to_ema() {
        use crate::PredictorKind;
        let cfg = PlannerConfig::new(2);
        assert_eq!(cfg.predictor, PredictorKind::Ema);
        let legacy = "{\"capacity\":2,\"epsilon\":4,\"scheme\":\"Both\",\"seed\":0}";
        let parsed: PlannerConfig = serde_json::from_str(legacy).unwrap();
        assert_eq!(parsed, cfg);
        let replay = cfg.with_predictor(PredictorKind::Replay);
        assert_eq!(replay.predictor, PredictorKind::Replay);
        let json = serde_json::to_string(&replay).unwrap();
        let back: PlannerConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, replay);
    }

    /// Chunked pricing never worsens a plan's predicted cost, keeps the
    /// same layout search space, and at one chunk is bit-identical to
    /// the unchunked planner.
    #[test]
    fn chunked_pricing_identity_and_improvement() {
        let base = planner(ReplicaScheme::Both);
        let d = demand(4);
        let whole = base.plan(&d);
        let one = base.clone().with_num_chunks(1).plan(&d);
        assert_eq!(whole, one, "one chunk must not change the plan");
        let four = base.clone().with_num_chunks(4).plan(&d);
        assert!(
            four.predicted.total() <= whole.predicted.total() + 1e-15,
            "pipelined pricing must not increase predicted cost"
        );
        assert_eq!(four.predicted.comp, whole.predicted.comp);
        // The degraded path prices with the same chunk count.
        let degraded = base
            .clone()
            .with_num_chunks(4)
            .plan_degraded(&d, &DegradedView::new(Topology::paper_cluster()))
            .unwrap();
        assert!((degraded.predicted.total() - four.predicted.total()).abs() < 1e-12);
    }

    /// The chunk sweep picks a chunk count > 1 when communication
    /// dominates, and its winner is never worse than any swept
    /// candidate.
    #[test]
    fn sweep_num_chunks_prefers_pipelining_when_comm_heavy() {
        let p = planner(ReplicaScheme::Both);
        let d = demand(2);
        let candidates = [1usize, 2, 4, 8];
        let (chosen, plan) = p.sweep_num_chunks(&d, &candidates);
        assert!(candidates.contains(&chosen));
        for &c in &candidates {
            let alt = p.clone().with_num_chunks(c).plan(&d);
            assert!(
                plan.predicted.total() <= alt.predicted.total() + 1e-15,
                "sweep winner (chunks {chosen}) beaten by chunks {c}"
            );
        }
        // paper_cluster demand is comm-heavy enough that pipelining wins.
        let whole = p.plan(&d);
        if whole.predicted.comm > 1e-6 {
            assert!(chosen > 1, "comm-heavy demand should pick > 1 chunk");
            assert!(plan.predicted.total() < whole.predicted.total());
        }
        // Determinism: the sweep returns the same winner on a re-run.
        let again = p.sweep_num_chunks(&d, &candidates);
        assert_eq!(again.0, chosen);
        assert_eq!(again.1, plan);
    }

    #[test]
    fn epsilon_one_keeps_base_scheme() {
        let p = Planner::new(
            PlannerConfig::new(2)
                .with_scheme(ReplicaScheme::PqOnly)
                .with_epsilon(1),
            CostParams::mixtral_8x7b(),
            Topology::paper_cluster(),
        );
        let d = demand(9);
        let schemes = p.candidate_schemes(&d);
        assert_eq!(schemes.len(), 1);
        assert_eq!(schemes[0], replica_allocation(&d.expert_loads(), 32, 2));
    }

    #[test]
    fn plan_within_budget_and_zero_budget() {
        let p = planner(ReplicaScheme::Both);
        let d = demand(3);
        // A generous budget returns the same plan as the unbounded solve.
        let bounded = p
            .plan_within(&d, std::time::Duration::from_secs(60))
            .unwrap();
        assert_eq!(bounded, p.plan(&d));
        // A zero budget cannot evaluate anything.
        assert!(matches!(
            p.plan_within(&d, std::time::Duration::ZERO),
            Err(PlanError::DeadlineExceeded { .. })
        ));
    }

    #[test]
    fn plan_degraded_places_on_survivors_only() {
        use laer_cluster::{DegradedView, DeviceId};
        let p = planner(ReplicaScheme::Both);
        let d = demand(5);
        let mut view = DegradedView::new(Topology::paper_cluster());
        view.fail_device(DeviceId::new(7));
        view.fail_device(DeviceId::new(20));
        let plan = p.plan_degraded(&d, &view).unwrap();
        let survivors = view.survivors();
        assert!(plan.layout.validate_on(&survivors).is_ok());
        assert_eq!(plan.layout.device_slots_used(DeviceId::new(7)), 0);
        assert_eq!(plan.layout.device_slots_used(DeviceId::new(20)), 0);
        assert_eq!(plan.layout.total_replicas(), 30 * 2);
        // No token is routed to a failed device.
        for &(_, _, dst, _) in plan.routing.entries() {
            assert!(!view.is_failed(dst), "token routed to failed {dst}");
        }
        // Nominal view reproduces the standard plan's layout.
        let nominal = p
            .plan_degraded(&d, &DegradedView::new(Topology::paper_cluster()))
            .unwrap();
        assert_eq!(nominal.layout, p.plan(&d).layout);
    }

    #[test]
    fn plan_degraded_prices_weak_links() {
        use laer_cluster::{DegradedView, DeviceId};
        let p = planner(ReplicaScheme::Both);
        let d = demand(6);
        let mut view = DegradedView::new(Topology::paper_cluster());
        for i in 8..16 {
            for j in 0..8 {
                view.degrade_link(DeviceId::new(i), DeviceId::new(j), 0.2);
            }
        }
        let nominal = p
            .plan_degraded(&d, &DegradedView::new(Topology::paper_cluster()))
            .unwrap();
        let degraded = p.plan_degraded(&d, &view).unwrap();
        // The degraded network can only raise the predicted cost.
        assert!(degraded.predicted.total() >= nominal.predicted.total() - 1e-12);
    }

    #[test]
    fn plan_degraded_typed_failures() {
        use laer_cluster::{DegradedView, DeviceId};
        let topo = Topology::single_node(4).unwrap();
        let p = Planner::new(
            PlannerConfig::new(2),
            CostParams::mixtral_8x7b(),
            topo.clone(),
        );
        let d = RoutingGenerator::new(RoutingGeneratorConfig::new(4, 8, 1024).with_seed(1))
            .next_iteration();
        // 4 devices x C=2 exactly hosts 8 experts; losing one device
        // makes every-expert-alive unsatisfiable.
        let mut view = DegradedView::new(topo.clone());
        view.fail_device(DeviceId::new(0));
        assert!(matches!(
            p.plan_degraded(&d, &view),
            Err(PlanError::InsufficientCapacity {
                survivors: 3,
                capacity: 2,
                experts: 8
            })
        ));
        let mut all = DegradedView::new(topo);
        for i in 0..4 {
            all.fail_device(DeviceId::new(i));
        }
        assert!(matches!(
            p.plan_degraded(&d, &all),
            Err(PlanError::NoSurvivors)
        ));
    }

    #[test]
    fn perturbation_preserves_invariants() {
        let mut rng = StdRng::seed_from_u64(1);
        let base = vec![8usize, 4, 2, 1, 1];
        for _ in 0..100 {
            let p = perturb(base.clone(), &mut rng);
            assert_eq!(p.iter().sum::<usize>(), 16);
            assert!(p.iter().all(|&r| r >= 1));
        }
    }
}
