//! Expert re-layout strategies — the `A[i][j]` matrix of Tab. 1.
//!
//! A layout records how many replicas of each expert every device
//! restores during FSEP unshard. The structural invariant (the corrected
//! constraint 3 of the paper, enforced by Alg. 1's `expert_count < C`
//! check) is that each device restores exactly `C` complete experts, for
//! `N · C` replicas in total, and every expert keeps at least one replica
//! so constraint 4 (all tokens routable) stays satisfiable.

use laer_cluster::{DeviceId, ExpertId, NodeId, Topology};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error produced by [`ExpertLayout`] validation and constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    /// A device hosts a number of replicas different from its capacity.
    CapacityViolated {
        /// Offending device.
        device: DeviceId,
        /// Replicas hosted.
        hosted: usize,
        /// Required capacity `C`.
        capacity: usize,
    },
    /// An expert has no replica anywhere (tokens for it cannot route).
    OrphanExpert {
        /// The expert with zero replicas.
        expert: ExpertId,
    },
    /// Capacity and expert count are inconsistent (`N · C < E`).
    InsufficientSlots {
        /// Total slots `N · C`.
        slots: usize,
        /// Expert count `E`.
        experts: usize,
    },
    /// Shape was empty.
    EmptyShape,
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::CapacityViolated {
                device,
                hosted,
                capacity,
            } => write!(
                f,
                "{device} hosts {hosted} replicas, capacity is {capacity}"
            ),
            LayoutError::OrphanExpert { expert } => {
                write!(f, "{expert} has no replica on any device")
            }
            LayoutError::InsufficientSlots { slots, experts } => {
                write!(f, "{slots} total slots cannot host {experts} experts")
            }
            LayoutError::EmptyShape => write!(f, "layout shape must be non-empty"),
        }
    }
}

impl std::error::Error for LayoutError {}

/// `A[i][j]` — the number of replicas of expert `j` restored on device
/// `i` this iteration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExpertLayout {
    devices: usize,
    experts: usize,
    capacity: usize,
    replicas: Vec<u32>,
}

impl ExpertLayout {
    /// Creates an all-zero layout (invalid until populated; used by the
    /// construction algorithms).
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::EmptyShape`] for a zero dimension and
    /// [`LayoutError::InsufficientSlots`] if `devices · capacity <
    /// experts`.
    pub fn empty(devices: usize, experts: usize, capacity: usize) -> Result<Self, LayoutError> {
        if devices == 0 || experts == 0 || capacity == 0 {
            return Err(LayoutError::EmptyShape);
        }
        if devices * capacity < experts {
            return Err(LayoutError::InsufficientSlots {
                slots: devices * capacity,
                experts,
            });
        }
        Ok(Self {
            devices,
            experts,
            capacity,
            replicas: vec![0; devices * experts],
        })
    }

    /// The classic expert-parallel layout (GShard / FSDP+EP): device `i`
    /// hosts the contiguous block of `C` experts
    /// `[(i mod E/C)·C, (i mod E/C)·C + C)`; with `N > E/C` the blocks
    /// repeat around the cluster, forming the fixed replica groups of
    /// Fig. 6.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError`] if shapes are empty, `C` does not divide
    /// `E`, or there are insufficient slots.
    pub fn classic_ep(
        devices: usize,
        experts: usize,
        capacity: usize,
    ) -> Result<Self, LayoutError> {
        let mut layout = Self::empty(devices, experts, capacity)?;
        if !experts.is_multiple_of(capacity) {
            return Err(LayoutError::InsufficientSlots {
                slots: devices * capacity,
                experts,
            });
        }
        let ep_groups = experts / capacity;
        for dev in 0..devices {
            let block = dev % ep_groups;
            for slot in 0..capacity {
                layout.add_replica(DeviceId::new(dev), ExpertId::new(block * capacity + slot));
            }
        }
        layout.validate()?;
        Ok(layout)
    }

    /// Number of devices `N`.
    pub fn num_devices(&self) -> usize {
        self.devices
    }

    /// Number of experts `E`.
    pub fn num_experts(&self) -> usize {
        self.experts
    }

    /// Per-device capacity `C`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Replica count of `expert` on `device`.
    pub fn replica_count(&self, device: DeviceId, expert: ExpertId) -> u32 {
        self.replicas[device.index() * self.experts + expert.index()]
    }

    /// Adds one replica of `expert` on `device` (Alg. 1 line 11).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn add_replica(&mut self, device: DeviceId, expert: ExpertId) {
        assert!(
            device.index() < self.devices && expert.index() < self.experts,
            "layout index out of range"
        );
        self.replicas[device.index() * self.experts + expert.index()] += 1;
    }

    /// Replicas hosted by `device` (`Σ_j A[i][j]`).
    pub fn device_slots_used(&self, device: DeviceId) -> usize {
        let base = device.index() * self.experts;
        self.replicas[base..base + self.experts]
            .iter()
            .map(|&c| c as usize)
            .sum()
    }

    /// Total replicas of `expert` across devices.
    pub fn expert_replicas(&self, expert: ExpertId) -> usize {
        (0..self.devices)
            .map(|i| self.replicas[i * self.experts + expert.index()] as usize)
            .sum()
    }

    /// Total replicas across the layout (`N · C` when valid).
    pub fn total_replicas(&self) -> usize {
        self.replicas.iter().map(|&c| c as usize).sum()
    }

    /// Devices hosting at least one replica of `expert`, with counts.
    pub fn replica_devices(&self, expert: ExpertId) -> Vec<(DeviceId, u32)> {
        (0..self.devices)
            .filter_map(|i| {
                let c = self.replicas[i * self.experts + expert.index()];
                (c > 0).then(|| (DeviceId::new(i), c))
            })
            .collect()
    }

    /// Replicas of `expert` within `node` (used by lite routing, Alg. 3).
    pub fn replicas_in_node(
        &self,
        topo: &Topology,
        expert: ExpertId,
        node: NodeId,
    ) -> Vec<(DeviceId, u32)> {
        topo.devices_on(node)
            .filter_map(|dev| {
                let c = self.replica_count(dev, expert);
                (c > 0).then_some((dev, c))
            })
            .collect()
    }

    /// Per-node replica counts of `expert` (Alg. 1 line 7's `node_cnt`).
    pub fn node_replica_counts(&self, topo: &Topology, expert: ExpertId) -> Vec<usize> {
        topo.node_ids()
            .map(|node| {
                topo.devices_on(node)
                    .map(|dev| self.replica_count(dev, expert) as usize)
                    .sum()
            })
            .collect()
    }

    /// Validates the structural invariants: every device filled to
    /// exactly `C`, every expert with ≥ 1 replica.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), LayoutError> {
        for i in 0..self.devices {
            let hosted = self.device_slots_used(DeviceId::new(i));
            if hosted != self.capacity {
                return Err(LayoutError::CapacityViolated {
                    device: DeviceId::new(i),
                    hosted,
                    capacity: self.capacity,
                });
            }
        }
        for j in 0..self.experts {
            if self.expert_replicas(ExpertId::new(j)) == 0 {
                return Err(LayoutError::OrphanExpert {
                    expert: ExpertId::new(j),
                });
            }
        }
        Ok(())
    }

    /// Validates the degraded-mode invariants for a cluster where only
    /// `active` devices participate: every active device filled to
    /// exactly `C`, every inactive device hosting nothing, and every
    /// expert with ≥ 1 replica *on an active device* (otherwise its
    /// tokens cannot route and the run must abort).
    ///
    /// [`Self::validate`] is the special case where `active` lists all
    /// devices.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant; an expert whose only
    /// replicas sit on inactive devices surfaces as
    /// [`LayoutError::OrphanExpert`].
    pub fn validate_on(&self, active: &[DeviceId]) -> Result<(), LayoutError> {
        let mut is_active = vec![false; self.devices];
        for d in active {
            if d.index() < self.devices {
                is_active[d.index()] = true;
            }
        }
        for (i, &active_here) in is_active.iter().enumerate() {
            let hosted = self.device_slots_used(DeviceId::new(i));
            let required = if active_here { self.capacity } else { 0 };
            if hosted != required {
                return Err(LayoutError::CapacityViolated {
                    device: DeviceId::new(i),
                    hosted,
                    capacity: required,
                });
            }
        }
        for j in 0..self.experts {
            let live = (0..self.devices)
                .filter(|&i| is_active[i])
                .map(|i| self.replicas[i * self.experts + j] as usize)
                .sum::<usize>();
            if live == 0 {
                return Err(LayoutError::OrphanExpert {
                    expert: ExpertId::new(j),
                });
            }
        }
        Ok(())
    }

    /// Replica-count vector indexed by expert (`expert_rep` in Alg. 1/4).
    pub fn replica_vector(&self) -> Vec<usize> {
        (0..self.experts)
            .map(|j| self.expert_replicas(ExpertId::new(j)))
            .collect()
    }

    /// The flat row-major `devices × experts` replica-count array — the
    /// contiguous hot-path representation used by [`crate::delta`].
    pub fn replica_counts(&self) -> &[u32] {
        &self.replicas
    }

    /// Builds a layout directly from a flat row-major `devices ×
    /// experts` count array (no validity check — callers validate).
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::EmptyShape`] / [`LayoutError::InsufficientSlots`]
    /// as [`Self::empty`] does.
    ///
    /// # Panics
    ///
    /// Panics if `counts.len() != devices * experts`.
    pub fn from_counts(
        devices: usize,
        experts: usize,
        capacity: usize,
        counts: Vec<u32>,
    ) -> Result<Self, LayoutError> {
        let mut layout = Self::empty(devices, experts, capacity)?;
        assert_eq!(counts.len(), devices * experts, "count array shape");
        layout.replicas = counts;
        Ok(layout)
    }
}

impl fmt::Display for ExpertLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "A[{}x{}] (C={}):",
            self.devices, self.experts, self.capacity
        )?;
        for i in 0..self.devices {
            let row: Vec<u32> = (0..self.experts)
                .map(|j| self.replica_count(DeviceId::new(i), ExpertId::new(j)))
                .collect();
            writeln!(f, "  dev{i}: {row:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_ep_matches_fig6() {
        // Fig. 6's traditional setup: N = 4, C = 2, E = 4 with
        // P_ep = 2 groups: devices 0, 2 host experts {0, 1}; 1, 3 host
        // {2, 3}.
        let l = ExpertLayout::classic_ep(4, 4, 2).unwrap();
        assert_eq!(l.replica_count(DeviceId::new(0), ExpertId::new(0)), 1);
        assert_eq!(l.replica_count(DeviceId::new(0), ExpertId::new(1)), 1);
        assert_eq!(l.replica_count(DeviceId::new(1), ExpertId::new(2)), 1);
        assert_eq!(l.replica_count(DeviceId::new(2), ExpertId::new(0)), 1);
        assert_eq!(l.replica_count(DeviceId::new(3), ExpertId::new(3)), 1);
        assert!(l.validate().is_ok());
        assert_eq!(l.total_replicas(), 8);
        assert_eq!(l.expert_replicas(ExpertId::new(0)), 2);
    }

    #[test]
    fn paper_setup_32_devices() {
        // Sec. 5.1: 32 devices, 8 experts, C = 2 -> 8 replicas/expert.
        let l = ExpertLayout::classic_ep(32, 8, 2).unwrap();
        assert!(l.validate().is_ok());
        for j in 0..8 {
            assert_eq!(l.expert_replicas(ExpertId::new(j)), 8);
        }
    }

    #[test]
    fn validation_catches_capacity() {
        let mut l = ExpertLayout::empty(2, 2, 1).unwrap();
        l.add_replica(DeviceId::new(0), ExpertId::new(0));
        l.add_replica(DeviceId::new(0), ExpertId::new(1));
        // Device 0 hosts 2 > C = 1; device 1 hosts 0.
        assert!(matches!(
            l.validate(),
            Err(LayoutError::CapacityViolated { hosted: 2, .. })
        ));
    }

    #[test]
    fn validation_catches_orphan() {
        let mut l = ExpertLayout::empty(2, 2, 1).unwrap();
        l.add_replica(DeviceId::new(0), ExpertId::new(0));
        l.add_replica(DeviceId::new(1), ExpertId::new(0));
        assert!(matches!(
            l.validate(),
            Err(LayoutError::OrphanExpert { expert }) if expert == ExpertId::new(1)
        ));
    }

    #[test]
    fn insufficient_slots_rejected() {
        assert!(matches!(
            ExpertLayout::empty(2, 8, 2),
            Err(LayoutError::InsufficientSlots {
                slots: 4,
                experts: 8
            })
        ));
    }

    #[test]
    fn node_replica_counts_by_topology() {
        let topo = Topology::new(2, 2).unwrap();
        let mut l = ExpertLayout::empty(4, 2, 1).unwrap();
        l.add_replica(DeviceId::new(0), ExpertId::new(0));
        l.add_replica(DeviceId::new(1), ExpertId::new(0));
        l.add_replica(DeviceId::new(2), ExpertId::new(1));
        l.add_replica(DeviceId::new(3), ExpertId::new(0));
        assert_eq!(l.node_replica_counts(&topo, ExpertId::new(0)), vec![2, 1]);
        assert_eq!(
            l.replicas_in_node(&topo, ExpertId::new(0), NodeId::new(1)),
            vec![(DeviceId::new(3), 1)]
        );
    }

    #[test]
    fn validate_on_survivors() {
        // 4 devices, device 3 failed: actives filled to C, failed empty.
        let mut l = ExpertLayout::empty(4, 3, 1).unwrap();
        l.add_replica(DeviceId::new(0), ExpertId::new(0));
        l.add_replica(DeviceId::new(1), ExpertId::new(1));
        l.add_replica(DeviceId::new(2), ExpertId::new(2));
        let active: Vec<_> = (0..3).map(DeviceId::new).collect();
        assert!(l.validate_on(&active).is_ok());
        // Full validation still fails (device 3 empty).
        assert!(l.validate().is_err());
        // A replica on the failed device violates the inactive-empty rule.
        let mut bad = l.clone();
        bad.add_replica(DeviceId::new(3), ExpertId::new(0));
        assert!(matches!(
            bad.validate_on(&active),
            Err(LayoutError::CapacityViolated {
                hosted: 1,
                capacity: 0,
                ..
            })
        ));
        // An expert with no replica on any active device is an orphan.
        let mut orphan = ExpertLayout::empty(4, 2, 1).unwrap();
        orphan.add_replica(DeviceId::new(0), ExpertId::new(0));
        orphan.add_replica(DeviceId::new(1), ExpertId::new(0));
        let survivors = vec![DeviceId::new(0), DeviceId::new(1)];
        assert!(matches!(
            orphan.validate_on(&survivors),
            Err(LayoutError::OrphanExpert { expert }) if expert == ExpertId::new(1)
        ));
    }

    #[test]
    fn replica_vector_matches() {
        let l = ExpertLayout::classic_ep(4, 4, 2).unwrap();
        assert_eq!(l.replica_vector(), vec![2, 2, 2, 2]);
    }

    #[test]
    fn display_shows_rows() {
        let l = ExpertLayout::classic_ep(2, 2, 1).unwrap();
        assert!(l.to_string().contains("dev0"));
    }
}
