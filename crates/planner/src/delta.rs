//! Incremental (delta) evaluation of the planner objective — the
//! fleet-scale hot path.
//!
//! Every probe of the local-search refiner ([`crate::refine`]) and every
//! state of the exhaustive enumerator ([`crate::exact`]) differs from its
//! predecessor by the placement of one or two experts. Rebuilding the
//! whole `lite_route` + `time_cost` pipeline per probe is `O(n·e)` cells
//! of routing work (each with a sort and several allocations) when only
//! the affected experts' columns can change: lite routing decides each
//! `(source, expert)` cell *only* from that expert's replica placement,
//! so a move touching experts `{a, b}` invalidates exactly the `2n`
//! cells of those two columns.
//!
//! [`IncrementalCost`] exploits this. It caches, per `(source, expert)`
//! cell, the routed rows `(destination, tokens, t_comm)` — the inner
//! terms of Eq. 2's per-device max-aggregation — and re-routes only the
//! columns marked dirty by [`IncrementalCost::apply_retarget`] /
//! [`IncrementalCost::apply_swap`]. Because Eq. 2 aggregates with `max`
//! over per-device *sums*, the final fold cannot be maintained by
//! subtract-and-add (floating-point sums are not reversible and the max
//! is not decomposable); instead [`IncrementalCost::cost`] re-folds the
//! cached rows in **exactly** the entry order of
//! [`crate::lite_routing::lite_route`] + [`crate::cost::time_cost`]
//! (sources ascending, experts ascending, targets in emission order).
//! Same addends, same order, same accumulators — the result is
//! bit-identical to the from-scratch oracle, which the property tests
//! in `tests/proptests.rs` enforce. The fold is a cheap linear pass of
//! pre-priced adds; the expensive per-cell work (target selection,
//! largest-remainder sort, pricing) happens only for dirty columns.
//!
//! Rows are stored per expert as one contiguous CSR-style column
//! (`starts` offsets + a flat entry array): re-routing a column is a
//! linear rebuild with no per-cell allocation, and the fold streams
//! `e` contiguous cursors instead of chasing `n·e` heap pointers.
//!
//! [`IncrementalCost::apply_retarget`] / [`IncrementalCost::apply_swap`]
//! snapshot the two affected columns (a pair of flat-array clones), so
//! [`IncrementalCost::revert`] restores them by swap-back instead of
//! re-routing — a rejected probe costs two column rebuilds total, not
//! four. Routing stays a pure function of the layout either way; the
//! snapshot is purely an optimisation.

use crate::cost::{effective_bw, CostBreakdown, CostParams};
use crate::layout::ExpertLayout;
use crate::lite_routing::{distribute_evenly_into, RouteScratch};
use crate::token_routing::TokenRouting;
use laer_cluster::{DeviceId, ExpertId, NodeId, Topology};
use laer_routing::RoutingMatrix;

/// Flat-array replica index: row-major `devices × experts` counts plus a
/// per-expert device list kept sorted by device id, so both the refiner's
/// guards (`replica_count`, `expert_replicas`) and lite routing's global
/// fallback read without scanning or allocating.
#[derive(Debug, Clone)]
struct LayoutIndex {
    devices: usize,
    experts: usize,
    capacity: usize,
    counts: Vec<u32>,
    /// Per expert: `(device, count)` with count > 0, ascending device id
    /// — the exact output order of [`ExpertLayout::replica_devices`].
    per_expert: Vec<Vec<(DeviceId, u32)>>,
    totals: Vec<usize>,
}

impl LayoutIndex {
    fn from_layout(layout: &ExpertLayout) -> Self {
        let devices = layout.num_devices();
        let experts = layout.num_experts();
        let counts = layout.replica_counts().to_vec();
        let mut per_expert = vec![Vec::new(); experts];
        let mut totals = vec![0usize; experts];
        for d in 0..devices {
            for (j, (pe, total)) in per_expert.iter_mut().zip(totals.iter_mut()).enumerate() {
                let c = counts[d * experts + j];
                if c > 0 {
                    pe.push((DeviceId::new(d), c));
                    *total += c as usize;
                }
            }
        }
        Self {
            devices,
            experts,
            capacity: layout.capacity(),
            counts,
            per_expert,
            totals,
        }
    }

    fn replica_count(&self, device: DeviceId, expert: ExpertId) -> u32 {
        self.counts[device.index() * self.experts + expert.index()]
    }

    fn add_replica(&mut self, device: DeviceId, expert: ExpertId) {
        self.counts[device.index() * self.experts + expert.index()] += 1;
        self.totals[expert.index()] += 1;
        let list = &mut self.per_expert[expert.index()];
        match list.binary_search_by(|&(d, _)| d.cmp(&device)) {
            Ok(pos) => list[pos].1 += 1,
            Err(pos) => list.insert(pos, (device, 1)),
        }
    }

    fn remove_replica(&mut self, device: DeviceId, expert: ExpertId) {
        let cell = device.index() * self.experts + expert.index();
        assert!(self.counts[cell] > 0, "removing absent replica");
        self.counts[cell] -= 1;
        self.totals[expert.index()] -= 1;
        let list = &mut self.per_expert[expert.index()];
        let pos = list
            .binary_search_by(|&(d, _)| d.cmp(&device))
            .unwrap_or_else(|_| unreachable!("count was positive"));
        if list[pos].1 == 1 {
            list.remove(pos);
        } else {
            list[pos].1 -= 1;
        }
    }

    /// The Alg. 3 target list: intra-node replicas first, all replicas
    /// globally otherwise — identical output (order and counts) to
    /// [`crate::lite_routing`]'s `ExpertLayout`-based variant.
    fn fill_targets(
        &self,
        topo: &Topology,
        expert: ExpertId,
        node: NodeId,
        out: &mut Vec<(DeviceId, u32)>,
    ) {
        out.clear();
        for dev in topo.devices_on(node) {
            let c = self.counts[dev.index() * self.experts + expert.index()];
            if c > 0 {
                out.push((dev, c));
            }
        }
        if out.is_empty() {
            out.extend_from_slice(&self.per_expert[expert.index()]);
        }
    }

    fn to_layout(&self) -> ExpertLayout {
        ExpertLayout::from_counts(
            self.devices,
            self.experts,
            self.capacity,
            self.counts.clone(),
        )
        .unwrap_or_else(|_| unreachable!("index shape came from a constructed layout"))
    }
}

/// One expert's routed rows for every source device, CSR-style:
/// `entries[starts[src]..starts[src + 1]]` is source `src`'s cell in
/// lite routing's emission order. A re-route is a linear rebuild into
/// the retained buffers — no per-cell allocation — and a snapshot is a
/// pair of flat-array clones.
#[derive(Debug, Clone, Default)]
struct Column {
    /// Prefix offsets into `entries`; length `devices + 1` once routed.
    starts: Vec<u32>,
    /// `(destination, tokens, t_comm)` rows, sources ascending;
    /// `t_comm` is the pre-priced pairwise term of Eq. 2 (`0` for local
    /// traffic, which the fold skips as `time_cost` does).
    entries: Vec<(DeviceId, u64, f64)>,
}

/// A move recorded for [`IncrementalCost::revert`]. Undo applies the
/// inverse index update and restores the two affected columns (and
/// their dirty flags) from the snapshots taken at apply time — routing
/// is a pure function of the layout, so the snapshot rows are exactly
/// what a re-route would reproduce.
#[derive(Debug, Clone, Copy)]
enum Move {
    Retarget {
        device: DeviceId,
        from: ExpertId,
        to: ExpertId,
    },
    Swap {
        d1: DeviceId,
        a: ExpertId,
        d2: DeviceId,
        b: ExpertId,
    },
}

#[derive(Debug)]
struct UndoEntry {
    mv: Move,
    /// `(expert, column snapshot, was-dirty)` for the two experts the
    /// move touches, captured before the index update.
    snaps: [(usize, Column, bool); 2],
}

/// Incrementally-maintained Eq. 2 evaluation state: the current layout
/// (as a flat index), the routed rows it implies, and scratch for the
/// per-device aggregation fold. See the module docs for the design.
#[derive(Debug)]
pub struct IncrementalCost<'a> {
    topo: &'a Topology,
    demand: &'a RoutingMatrix,
    params: CostParams,
    index: LayoutIndex,
    /// One CSR column per expert (see [`Column`]).
    columns: Vec<Column>,
    dirty: Vec<bool>,
    any_dirty: bool,
    undo: Vec<UndoEntry>,
    scratch: RouteScratch,
    send: Vec<f64>,
    recv: Vec<f64>,
    /// Per-device compute loads, maintained incrementally as columns are
    /// rebuilt or restored. Integer sums are exact and order-free, so
    /// unlike the float send/recv aggregates they need no re-fold —
    /// the invariant is `device_loads == Σ tokens per destination over
    /// every column's current entries`, dirty or not.
    device_loads: Vec<u64>,
}

impl<'a> IncrementalCost<'a> {
    /// Builds the state for `layout`. Routing is deferred: columns are
    /// routed lazily on the first [`Self::cost`] / [`Self::routing`]
    /// call, so a not-yet-covering layout (every expert ≥ 1 replica is
    /// required only at evaluation time) can be constructed and patched
    /// first — the exhaustive enumerator depends on this.
    ///
    /// # Panics
    ///
    /// Panics if shapes of `topo`, `demand` and `layout` disagree.
    pub fn new(
        topo: &'a Topology,
        demand: &'a RoutingMatrix,
        layout: &ExpertLayout,
        params: &CostParams,
    ) -> Self {
        assert_eq!(demand.num_devices(), topo.num_devices(), "device count");
        assert_eq!(layout.num_devices(), topo.num_devices(), "layout devices");
        assert_eq!(layout.num_experts(), demand.num_experts(), "expert count");
        let index = LayoutIndex::from_layout(layout);
        let n = index.devices;
        let e = index.experts;
        Self {
            topo,
            demand,
            params: *params,
            index,
            columns: vec![Column::default(); e],
            dirty: vec![true; e],
            any_dirty: true,
            undo: Vec::new(),
            scratch: RouteScratch::new(),
            send: vec![0.0; n],
            recv: vec![0.0; n],
            device_loads: vec![0; n],
        }
    }

    /// Replica count of `expert` on `device` in the current state.
    pub fn replica_count(&self, device: DeviceId, expert: ExpertId) -> u32 {
        self.index.replica_count(device, expert)
    }

    /// Total replicas of `expert` in the current state.
    pub fn expert_replicas(&self, expert: ExpertId) -> usize {
        self.index.totals[expert.index()]
    }

    /// Whether every expert currently has at least one replica (the
    /// routability constraint — evaluation panics without it for experts
    /// with demand).
    pub fn all_experts_covered(&self) -> bool {
        self.index.totals.iter().all(|&t| t > 0)
    }

    /// Moves one replica on `device` from expert `from` to expert `to`
    /// (the refiner's retarget move), recording it for [`Self::revert`].
    /// Only the two experts' routing columns are invalidated.
    pub fn apply_retarget(&mut self, device: DeviceId, from: ExpertId, to: ExpertId) {
        let snaps = self.snapshot_pair(from.index(), to.index());
        self.raw_retarget(device, from, to);
        self.undo.push(UndoEntry {
            mv: Move::Retarget { device, from, to },
            snaps,
        });
    }

    /// Exchanges `d1`'s replica of `a` with `d2`'s replica of `b` (the
    /// refiner's swap move), recording it for [`Self::revert`]. Only the
    /// two experts' routing columns are invalidated.
    pub fn apply_swap(&mut self, d1: DeviceId, a: ExpertId, d2: DeviceId, b: ExpertId) {
        let snaps = self.snapshot_pair(a.index(), b.index());
        self.raw_swap(d1, a, d2, b);
        self.undo.push(UndoEntry {
            mv: Move::Swap { d1, a, d2, b },
            snaps,
        });
    }

    fn snapshot_pair(&self, x: usize, y: usize) -> [(usize, Column, bool); 2] {
        [
            (x, self.columns[x].clone(), self.dirty[x]),
            (y, self.columns[y].clone(), self.dirty[y]),
        ]
    }

    /// Undoes the most recent un-reverted [`Self::apply_retarget`] /
    /// [`Self::apply_swap`]: applies the inverse index update and
    /// restores the two columns from their apply-time snapshots (no
    /// re-route — the snapshot rows are what re-routing the restored
    /// layout would produce). Returns `false` if there is nothing to
    /// revert.
    pub fn revert(&mut self) -> bool {
        let Some(entry) = self.undo.pop() else {
            return false;
        };
        match entry.mv {
            Move::Retarget { device, from, to } => {
                self.index.remove_replica(device, to);
                self.index.add_replica(device, from);
            }
            Move::Swap { d1, a, d2, b } => {
                self.index.remove_replica(d1, b);
                self.index.remove_replica(d2, a);
                self.index.add_replica(d1, a);
                self.index.add_replica(d2, b);
            }
        }
        for (j, col, was_dirty) in entry.snaps {
            for &(dst, tokens, _) in &self.columns[j].entries {
                self.device_loads[dst.index()] -= tokens;
            }
            for &(dst, tokens, _) in &col.entries {
                self.device_loads[dst.index()] += tokens;
            }
            self.columns[j] = col;
            self.dirty[j] = was_dirty;
        }
        self.any_dirty = self.dirty.iter().any(|&d| d);
        true
    }

    /// Applies an arbitrary per-device diff: removes one replica of each
    /// expert index in `remove`, adds one of each in `add`. Not
    /// revertible — the undo stack is cleared. This is the exhaustive
    /// enumerator's odometer step; intermediate states may leave experts
    /// uncovered as long as [`Self::cost`] is only called on covering
    /// states.
    pub fn set_device_experts(&mut self, device: DeviceId, remove: &[usize], add: &[usize]) {
        for &j in remove {
            self.index.remove_replica(device, ExpertId::new(j));
            self.mark_dirty(j);
        }
        for &j in add {
            self.index.add_replica(device, ExpertId::new(j));
            self.mark_dirty(j);
        }
        self.undo.clear();
    }

    fn raw_retarget(&mut self, device: DeviceId, from: ExpertId, to: ExpertId) {
        self.index.remove_replica(device, from);
        self.index.add_replica(device, to);
        self.mark_dirty(from.index());
        self.mark_dirty(to.index());
    }

    fn raw_swap(&mut self, d1: DeviceId, a: ExpertId, d2: DeviceId, b: ExpertId) {
        self.index.remove_replica(d1, a);
        self.index.remove_replica(d2, b);
        self.index.add_replica(d1, b);
        self.index.add_replica(d2, a);
        self.mark_dirty(a.index());
        self.mark_dirty(b.index());
    }

    fn mark_dirty(&mut self, expert: usize) {
        self.dirty[expert] = true;
        self.any_dirty = true;
    }

    /// Re-routes dirty columns.
    fn flush(&mut self) {
        if !self.any_dirty {
            return;
        }
        for j in 0..self.index.experts {
            if self.dirty[j] {
                self.dirty[j] = false;
                self.reroute_expert(j);
            }
        }
        self.any_dirty = false;
    }

    /// Routes expert `j`'s column — one Alg. 3 cell per source device —
    /// with the exact arithmetic of `lite_route`, pre-pricing each row
    /// with `time_cost`'s pairwise term.
    fn reroute_expert(&mut self, j: usize) {
        let expert = ExpertId::new(j);
        let v_comm = self.params.v_comm;
        let latency_aware = self.params.latency_aware;
        let topo = self.topo;
        let col = &mut self.columns[j];
        for &(dst, tokens, _) in &col.entries {
            self.device_loads[dst.index()] -= tokens;
        }
        col.starts.clear();
        col.entries.clear();
        col.starts.push(0);
        let device_loads = &mut self.device_loads;
        for node in topo.node_ids() {
            // Alg. 3's target list depends only on `(expert, node)` —
            // every source in the node shares it — so resolve it once
            // per node instead of once per source.
            self.index
                .fill_targets(topo, expert, node, &mut self.scratch.targets);
            // Single-target fast path, also hoisted per node: the whole
            // cell goes to one destination — identical output to
            // `distribute_evenly_into` (the share is exact, the
            // remainder zero) — and the link kind from every non-local
            // source in the node to that destination is the same, so
            // the bandwidth/latency terms are resolved once. This is
            // the common case at fleet scale, where layouts cover every
            // node.
            let single = if let [(only, _)] = self.scratch.targets[..] {
                let rep = topo.devices_on(node).find(|&d| d != only);
                let (bw, lat) = rep.map_or((f64::INFINITY, 0.0), |rep| {
                    (effective_bw(topo, rep, only), topo.latency(rep, only))
                });
                Some((only, bw, lat))
            } else {
                None
            };
            for src in topo.devices_on(node) {
                let tokens = self.demand.get(src, expert);
                if tokens == 0 {
                    col.starts.push(col.entries.len() as u32);
                    continue;
                }
                assert!(
                    !self.scratch.targets.is_empty(),
                    "layout hosts no replica of {expert}; evaluate covering layouts only"
                );
                if let Some((only, bw, lat)) = single {
                    let t = if only == src {
                        0.0
                    } else {
                        // Same expression order as `time_cost`'s fold
                        // (and the same bandwidth/latency values — link
                        // kind is uniform within the node), so the
                        // pre-priced term is bit-identical.
                        let mut t = tokens as f64 * v_comm / bw;
                        if latency_aware {
                            t += lat;
                        }
                        t
                    };
                    device_loads[only.index()] += tokens;
                    col.entries.push((only, tokens, t));
                } else {
                    let entries = &mut col.entries;
                    let emit = |dst: DeviceId, count: u64| {
                        let t = if dst == src {
                            0.0
                        } else {
                            let mut t = count as f64 * v_comm / effective_bw(topo, src, dst);
                            if latency_aware {
                                t += topo.latency(src, dst);
                            }
                            t
                        };
                        device_loads[dst.index()] += count;
                        entries.push((dst, count, t));
                    };
                    let (targets, shares, order) = (
                        &self.scratch.targets,
                        &mut self.scratch.shares,
                        &mut self.scratch.order,
                    );
                    distribute_evenly_into(src, tokens, targets, shares, order, emit);
                }
                col.starts.push(col.entries.len() as u32);
            }
        }
    }

    /// Evaluates Eq. 2 for the current state, bit-identical to
    /// `time_cost(topo, &lite_route(topo, demand, &self.layout()),
    /// params)`: the cached rows are folded in the oracle's exact entry
    /// order into the per-device send/recv/load aggregates, then
    /// max-aggregated. Dirty columns are re-routed first.
    ///
    /// # Panics
    ///
    /// Panics if some expert with demand has no replica (see
    /// [`Self::all_experts_covered`]).
    pub fn cost(&mut self) -> CostBreakdown {
        self.flush();
        let (send, recv) = (&mut self.send, &mut self.recv);
        send.fill(0.0);
        recv.fill(0.0);
        for (src, send_src) in send.iter_mut().enumerate() {
            for col in &self.columns {
                let (lo, hi) = (col.starts[src] as usize, col.starts[src + 1] as usize);
                for &(dst, _, t) in &col.entries[lo..hi] {
                    if dst.index() != src {
                        *send_src += t;
                        recv[dst.index()] += t;
                    }
                }
            }
        }
        let straggler = self
            .send
            .iter()
            .zip(&self.recv)
            .map(|(&s, &r)| s.max(r))
            .fold(0.0, f64::max);
        let comm = 4.0 * straggler;
        let max_load = self.device_loads.iter().copied().max().unwrap_or(0) as f64;
        let comp =
            self.params.compute_multiplier() * max_load * self.params.v_comp / self.params.b_comp;
        CostBreakdown { comm, comp }
    }

    /// Materialises the current layout.
    pub fn layout(&self) -> ExpertLayout {
        self.index.to_layout()
    }

    /// Materialises the current routing — entry-for-entry identical to
    /// `lite_route(topo, demand, &self.layout())`.
    pub fn routing(&mut self) -> TokenRouting {
        self.flush();
        let n = self.index.devices;
        let e = self.index.experts;
        let mut out = TokenRouting::new(n, e);
        for src in 0..n {
            for (j, col) in self.columns.iter().enumerate() {
                let (lo, hi) = (col.starts[src] as usize, col.starts[src + 1] as usize);
                for &(dst, tokens, _) in &col.entries[lo..hi] {
                    out.push(DeviceId::new(src), ExpertId::new(j), dst, tokens);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::time_cost;
    use crate::lite_routing::lite_route;
    use laer_routing::{RoutingGenerator, RoutingGeneratorConfig};

    fn setup(seed: u64) -> (Topology, RoutingMatrix, ExpertLayout, CostParams) {
        let topo = Topology::new(2, 4).unwrap();
        let demand = RoutingGenerator::new(RoutingGeneratorConfig::new(8, 8, 8192).with_seed(seed))
            .next_iteration();
        let layout = ExpertLayout::classic_ep(8, 8, 2).unwrap();
        (topo, demand, layout, CostParams::mixtral_8x7b())
    }

    fn oracle(
        topo: &Topology,
        demand: &RoutingMatrix,
        layout: &ExpertLayout,
        params: &CostParams,
    ) -> CostBreakdown {
        time_cost(topo, &lite_route(topo, demand, layout), params)
    }

    fn assert_bits(a: CostBreakdown, b: CostBreakdown) {
        assert_eq!(a.comm.to_bits(), b.comm.to_bits(), "comm bits");
        assert_eq!(a.comp.to_bits(), b.comp.to_bits(), "comp bits");
    }

    #[test]
    fn initial_cost_matches_oracle_bitwise() {
        for seed in 1u64..6 {
            let (topo, demand, layout, params) = setup(seed);
            let mut inc = IncrementalCost::new(&topo, &demand, &layout, &params);
            assert_bits(inc.cost(), oracle(&topo, &demand, &layout, &params));
            // Routing materialisation is entry-identical too.
            assert_eq!(
                inc.routing().entries(),
                lite_route(&topo, &demand, &layout).entries()
            );
        }
    }

    #[test]
    fn retarget_and_revert_match_oracle_bitwise() {
        let (topo, demand, layout, params) = setup(3);
        let mut inc = IncrementalCost::new(&topo, &demand, &layout, &params);
        let before = inc.cost();
        // classic_ep(8,8,2): device 0 hosts experts {0,1}; retarget its
        // replica of expert 0 to expert 2.
        let (d, a, b) = (DeviceId::new(0), ExpertId::new(0), ExpertId::new(2));
        assert!(inc.replica_count(d, a) > 0 && inc.expert_replicas(a) >= 2);
        inc.apply_retarget(d, a, b);
        let moved_layout = inc.layout();
        assert_eq!(moved_layout.replica_count(d, a), 0);
        assert_eq!(moved_layout.replica_count(d, b), 1);
        assert_bits(inc.cost(), oracle(&topo, &demand, &moved_layout, &params));
        assert!(inc.revert());
        assert_eq!(inc.layout(), layout);
        assert_bits(inc.cost(), before);
        assert!(!inc.revert(), "undo stack exhausted");
    }

    #[test]
    fn swap_and_revert_match_oracle_bitwise() {
        let (topo, demand, layout, params) = setup(4);
        let mut inc = IncrementalCost::new(&topo, &demand, &layout, &params);
        let before = inc.cost();
        // Device 0 hosts {0,1}, device 1 hosts {2,3}: swap 0's expert 0
        // with 1's expert 2.
        let (d1, a, d2, b) = (
            DeviceId::new(0),
            ExpertId::new(0),
            DeviceId::new(1),
            ExpertId::new(2),
        );
        inc.apply_swap(d1, a, d2, b);
        let swapped = inc.layout();
        assert_eq!(swapped.replica_count(d1, b), 1);
        assert_eq!(swapped.replica_count(d2, a), 1);
        assert_bits(inc.cost(), oracle(&topo, &demand, &swapped, &params));
        assert!(inc.revert());
        assert_eq!(inc.layout(), layout);
        assert_bits(inc.cost(), before);
    }

    #[test]
    fn deferred_construction_allows_uncovered_intermediate_states() {
        let (topo, demand, _, params) = setup(5);
        // Start from an empty (uncovered) layout, then patch device by
        // device into classic-EP via diffs — cost only at the end.
        let empty = ExpertLayout::empty(8, 8, 2).unwrap();
        let mut inc = IncrementalCost::new(&topo, &demand, &empty, &params);
        assert!(!inc.all_experts_covered());
        for d in 0..8usize {
            let block = d % 4;
            inc.set_device_experts(DeviceId::new(d), &[], &[block * 2, block * 2 + 1]);
        }
        assert!(inc.all_experts_covered());
        let classic = ExpertLayout::classic_ep(8, 8, 2).unwrap();
        assert_eq!(inc.layout(), classic);
        assert_bits(inc.cost(), oracle(&topo, &demand, &classic, &params));
    }

    #[test]
    fn latency_aware_pricing_matches_oracle_bitwise() {
        let (topo, demand, layout, params) = setup(7);
        let params = params.with_latency_aware(true);
        let mut inc = IncrementalCost::new(&topo, &demand, &layout, &params);
        assert_bits(inc.cost(), oracle(&topo, &demand, &layout, &params));
        // And through a move/revert cycle.
        let (d, a, b) = (DeviceId::new(0), ExpertId::new(0), ExpertId::new(2));
        inc.apply_retarget(d, a, b);
        let moved = inc.layout();
        assert_bits(inc.cost(), oracle(&topo, &demand, &moved, &params));
        assert!(inc.revert());
        assert_bits(inc.cost(), oracle(&topo, &demand, &layout, &params));
    }

    #[test]
    fn guards_read_through_index() {
        let (_, _, layout, params) = setup(1);
        let topo = Topology::new(2, 4).unwrap();
        let demand = RoutingMatrix::zeros(8, 8).unwrap();
        let inc = IncrementalCost::new(&topo, &demand, &layout, &params);
        for d in 0..8 {
            for j in 0..8 {
                assert_eq!(
                    inc.replica_count(DeviceId::new(d), ExpertId::new(j)),
                    layout.replica_count(DeviceId::new(d), ExpertId::new(j))
                );
            }
        }
        for j in 0..8 {
            assert_eq!(
                inc.expert_replicas(ExpertId::new(j)),
                layout.expert_replicas(ExpertId::new(j))
            );
        }
        assert!(inc.all_experts_covered());
    }
}
