//! Greedy topology-aware expert relocation — Alg. 1 of the paper.
//!
//! Given the replica count of each expert and the expert loads, the
//! algorithm places replicas one by one, heaviest first, keeping replicas
//! of the same expert spread across nodes (so lite routing's intra-node
//! preference stays balanced) and packing each replica onto the
//! least-loaded eligible device.

use crate::layout::ExpertLayout;
use laer_cluster::{DeviceId, ExpertId, Topology};

/// Alg. 1: builds an [`ExpertLayout`] from per-expert replica counts and
/// loads.
///
/// # Panics
///
/// Panics if `expert_rep` and `expert_loads` have different lengths, if
/// the total replica count differs from `N · C`, or if any expert has
/// zero replicas.
pub fn expert_relocation(
    expert_rep: &[usize],
    expert_loads: &[u64],
    topo: &Topology,
    capacity: usize,
) -> ExpertLayout {
    let all: Vec<DeviceId> = topo.devices().collect();
    expert_relocation_on(expert_rep, expert_loads, topo, capacity, &all)
}

/// Alg. 1 restricted to a device subset — the degraded-mode variant run
/// after device failures: replicas are placed only on `active` devices
/// (the survivors), the layout keeps the full `N × E` shape so device
/// ids stay stable, and the replica total must equal
/// `active.len() · C`.
///
/// # Panics
///
/// Panics if `expert_rep` and `expert_loads` have different lengths, if
/// the total replica count differs from `active.len() · C`, if any
/// expert has zero replicas, or if `active` is empty or repeats a
/// device.
pub fn expert_relocation_on(
    expert_rep: &[usize],
    expert_loads: &[u64],
    topo: &Topology,
    capacity: usize,
    active: &[DeviceId],
) -> ExpertLayout {
    let e = expert_rep.len();
    let n = topo.num_devices();
    assert_eq!(e, expert_loads.len(), "replica/load length mismatch");
    assert!(
        expert_rep.iter().all(|&r| r >= 1),
        "every expert needs a replica"
    );
    assert!(!active.is_empty(), "need at least one active device");
    let mut is_active = vec![false; n];
    for d in active {
        assert!(!is_active[d.index()], "active device listed twice");
        is_active[d.index()] = true;
    }
    assert_eq!(
        expert_rep.iter().sum::<usize>(),
        active.len() * capacity,
        "replica total must equal active device count * C"
    );

    // Lines 3-5: one list entry per replica, carrying the average load,
    // sorted descending (ties toward lower expert index for determinism).
    let mut list: Vec<(usize, f64)> = Vec::with_capacity(n * capacity);
    for j in 0..e {
        let avg = expert_loads[j] as f64 / expert_rep[j] as f64;
        for _ in 0..expert_rep[j] {
            list.push((j, avg));
        }
    }
    list.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));

    let mut layout = ExpertLayout::empty(n, e, capacity)
        .unwrap_or_else(|_| unreachable!("caller-provided shape is consistent"));
    let mut expert_count = vec![0usize; n]; // slots used per device
    let mut device_loads = vec![0.0f64; n];

    for (expert_idx, load) in list {
        let expert = ExpertId::new(expert_idx);
        // Lines 7-9: nodes with the fewest replicas of this expert that
        // still have a device with free capacity.
        let node_cnt = layout.node_replica_counts(topo, expert);
        let mut candidate_nodes: Vec<usize> = (0..topo.num_nodes()).collect();
        candidate_nodes.sort_by_key(|&nid| node_cnt[nid]);
        let mut placed = false;
        let mut group_start = 0;
        while group_start < candidate_nodes.len() {
            let level = node_cnt[candidate_nodes[group_start]];
            let group: Vec<usize> = candidate_nodes[group_start..]
                .iter()
                .copied()
                .take_while(|&nid| node_cnt[nid] == level)
                .collect();
            // Lines 10-13: least-loaded device with spare capacity inside
            // the chosen node group.
            let best = group
                .iter()
                .flat_map(|&nid| topo.devices_on(laer_cluster::NodeId::new(nid)))
                .filter(|d| is_active[d.index()] && expert_count[d.index()] < capacity)
                .min_by(|a, b| {
                    device_loads[a.index()]
                        .total_cmp(&device_loads[b.index()])
                        .then(a.index().cmp(&b.index()))
                });
            if let Some(device) = best {
                layout.add_replica(device, expert);
                device_loads[device.index()] += load;
                expert_count[device.index()] += 1;
                placed = true;
                break;
            }
            group_start += group.len();
        }
        assert!(
            placed,
            "replica total equals slot total, placement must succeed"
        );
    }
    debug_assert!(layout.validate_on(active).is_ok());
    layout
}

/// One expert-weight transfer implied by switching layouts: `dst` must
/// fetch `expert`'s parameters from `src` before it can serve them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelocationMove {
    /// Expert whose weights move.
    pub expert: ExpertId,
    /// Device already holding the weights under the old layout.
    pub src: DeviceId,
    /// Device gaining the expert under the new layout.
    pub dst: DeviceId,
}

/// The parameter movements needed to turn layout `from` into layout
/// `to`: one entry per device that *gains* an expert it did not host
/// before (replica-count increases on a device that already hosts the
/// expert are free — the weights are already resident). Sources are
/// chosen topology-aware and deterministically: a same-node holder if
/// one exists, otherwise the lowest-indexed holder; holders are
/// evaluated under `from`, so every transfer reads weights that are
/// actually resident when the re-layout starts. Experts with no holder
/// in `from` are skipped (a valid layout places every expert at least
/// once, so this only arises on malformed inputs).
///
/// # Panics
///
/// Panics if the two layouts disagree in device or expert count.
pub fn relocation_moves(
    topo: &Topology,
    from: &ExpertLayout,
    to: &ExpertLayout,
) -> Vec<RelocationMove> {
    assert_eq!(from.num_devices(), to.num_devices(), "device count");
    assert_eq!(from.num_experts(), to.num_experts(), "expert count");
    let mut moves = Vec::new();
    for j in 0..to.num_experts() {
        let expert = ExpertId::new(j);
        let holders: Vec<DeviceId> = from
            .replica_devices(expert)
            .into_iter()
            .map(|(d, _)| d)
            .collect();
        if holders.is_empty() {
            continue;
        }
        for (dst, _) in to.replica_devices(expert) {
            if from.replica_count(dst, expert) > 0 {
                continue;
            }
            let src = holders
                .iter()
                .copied()
                .find(|&h| topo.same_node(h, dst))
                .unwrap_or(holders[0]);
            moves.push(RelocationMove { expert, src, dst });
        }
    }
    moves
}

/// Convenience: maximum projected device load under a layout built by
/// [`expert_relocation`], assuming each expert's load splits evenly over
/// its replicas.
pub fn projected_max_device_load(layout: &ExpertLayout, expert_loads: &[u64]) -> f64 {
    let rep = layout.replica_vector();
    let mut device_loads = vec![0.0f64; layout.num_devices()];
    for j in 0..layout.num_experts() {
        if rep[j] == 0 {
            continue;
        }
        let per_replica = expert_loads[j] as f64 / rep[j] as f64;
        for (dev, count) in layout.replica_devices(ExpertId::new(j)) {
            device_loads[dev.index()] += per_replica * count as f64;
        }
    }
    device_loads.into_iter().fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replica::replica_allocation;

    #[test]
    fn produces_valid_layout() {
        let topo = Topology::new(2, 2).unwrap();
        let loads = [400u64, 100, 100, 100];
        let rep = replica_allocation(&loads, 4, 2);
        let layout = expert_relocation(&rep, &loads, &topo, 2);
        assert!(layout.validate().is_ok());
        assert_eq!(layout.total_replicas(), 8);
    }

    #[test]
    fn replicas_spread_across_nodes() {
        let topo = Topology::new(2, 2).unwrap();
        // Expert 0 has exactly 2 replicas: they must land on different
        // nodes.
        let rep = vec![2usize, 2, 2, 2];
        let loads = [100u64, 90, 80, 70];
        let layout = expert_relocation(&rep, &loads, &topo, 2);
        for j in 0..4 {
            let counts = layout.node_replica_counts(&topo, ExpertId::new(j));
            assert_eq!(counts, vec![1, 1], "expert {j} unbalanced: {counts:?}");
        }
    }

    /// Fig. 6's scenario: skewed load toward experts 0 and 1 should make
    /// the greedy layout give them more devices than the cold experts.
    #[test]
    fn hot_experts_get_more_devices() {
        let topo = Topology::single_node(4).unwrap();
        let loads = [500u64, 450, 50, 40];
        let rep = replica_allocation(&loads, 4, 2);
        let layout = expert_relocation(&rep, &loads, &topo, 2);
        assert!(layout.expert_replicas(ExpertId::new(0)) >= 2);
        assert!(
            layout.expert_replicas(ExpertId::new(0)) > layout.expert_replicas(ExpertId::new(3))
        );
        // Projected max device load beats the classic fixed layout.
        let classic = ExpertLayout::classic_ep(4, 4, 2).unwrap();
        let greedy_max = projected_max_device_load(&layout, &loads);
        let classic_max = projected_max_device_load(&classic, &loads);
        assert!(
            greedy_max < classic_max,
            "greedy {greedy_max} should beat classic {classic_max}"
        );
    }

    #[test]
    fn least_loaded_device_chosen() {
        let topo = Topology::single_node(2).unwrap();
        // Single replica each of experts 0 (heavy) and 1..=3 (light);
        // the heavy expert is placed first on device 0, then lights fill
        // the lighter device first.
        let rep = vec![1usize, 1, 1, 1];
        let loads = [1000u64, 10, 10, 10];
        let layout = expert_relocation(&rep, &loads, &topo, 2);
        // Device hosting expert 0 should host exactly one more (light)
        // expert; device 1 hosts two lights.
        let hot_dev = layout.replica_devices(ExpertId::new(0))[0].0;
        assert_eq!(layout.device_slots_used(hot_dev), 2);
        assert!(layout.validate().is_ok());
    }

    #[test]
    fn deterministic() {
        let topo = Topology::new(2, 4).unwrap();
        let loads = [100u64, 300, 50, 200, 70, 10, 90, 40];
        let rep = replica_allocation(&loads, 8, 2);
        let a = expert_relocation(&rep, &loads, &topo, 2);
        let b = expert_relocation(&rep, &loads, &topo, 2);
        assert_eq!(a, b);
    }

    /// Relocation moves: identical layouts need no traffic; gaining a
    /// previously-unhosted expert needs exactly one fetch per gaining
    /// device, sourced same-node when possible.
    #[test]
    fn relocation_moves_diff_layouts() {
        let topo = Topology::new(2, 2).unwrap();
        let from = ExpertLayout::classic_ep(4, 4, 2).unwrap();
        assert!(relocation_moves(&topo, &from, &from).is_empty());

        // Rebuild with expert 0 hot: it gains devices it never lived on.
        let loads = [900u64, 40, 30, 30];
        let rep = replica_allocation(&loads, 4, 2);
        let to = expert_relocation(&rep, &loads, &topo, 2);
        let moves = relocation_moves(&topo, &from, &to);
        for m in &moves {
            // Every source actually held the expert under `from`, and no
            // destination already did.
            assert!(from.replica_count(m.src, m.expert) > 0);
            assert_eq!(from.replica_count(m.dst, m.expert), 0);
            assert!(to.replica_count(m.dst, m.expert) > 0);
            // classic_ep(4, 4, 2) hosts every expert once per node, so
            // every gaining device has a same-node source.
            assert!(topo.same_node(m.src, m.dst), "cross-node move {m:?}");
        }
    }

    /// Growing the replica count of an expert on a device that already
    /// hosts it is free — the weights are resident, so no move.
    #[test]
    fn relocation_moves_skip_resident_experts() {
        use laer_cluster::DeviceId;
        let topo = Topology::single_node(2).unwrap();
        let copy_into = |cap: usize, extra: Option<(usize, usize)>| {
            let mut l = ExpertLayout::empty(2, 2, cap).unwrap();
            l.add_replica(DeviceId::new(0), ExpertId::new(0));
            l.add_replica(DeviceId::new(1), ExpertId::new(1));
            if let Some((d, e)) = extra {
                l.add_replica(DeviceId::new(d), ExpertId::new(e));
            }
            l
        };
        let base = copy_into(2, None);
        // Second replica of expert 0 on device 0: resident, free.
        assert!(relocation_moves(&topo, &base, &copy_into(2, Some((0, 0)))).is_empty());
        // Replica of expert 1 on device 0: one fetch from device 1.
        let moves = relocation_moves(&topo, &base, &copy_into(2, Some((0, 1))));
        assert_eq!(
            moves,
            vec![RelocationMove {
                expert: ExpertId::new(1),
                src: DeviceId::new(1),
                dst: DeviceId::new(0),
            }]
        );
    }

    #[test]
    #[should_panic(expected = "must equal active device count")]
    fn wrong_total_panics() {
        let topo = Topology::single_node(2).unwrap();
        let _ = expert_relocation(&[1, 1, 1], &[1, 1, 1], &topo, 2);
    }

    /// Degraded mode: relocation onto survivors leaves failed devices
    /// empty, fills survivors to capacity and keeps node spreading.
    #[test]
    fn relocation_on_survivors() {
        use laer_cluster::DeviceId;
        let topo = Topology::new(2, 4).unwrap();
        // Device 5 failed: 7 survivors * C=2 = 14 replicas over 8 experts.
        let survivors: Vec<DeviceId> = (0..8).filter(|&i| i != 5).map(DeviceId::new).collect();
        let loads = [500u64, 300, 200, 100, 90, 80, 70, 60];
        let rep = crate::replica::replica_allocation(&loads, 7, 2);
        assert_eq!(rep.iter().sum::<usize>(), 14);
        let layout = expert_relocation_on(&rep, &loads, &topo, 2, &survivors);
        assert!(layout.validate_on(&survivors).is_ok());
        assert_eq!(layout.device_slots_used(DeviceId::new(5)), 0);
        assert_eq!(layout.total_replicas(), 14);
        // Full-device variant is the all-devices special case.
        let all: Vec<DeviceId> = topo.devices().collect();
        let rep_all = crate::replica::replica_allocation(&loads, 8, 2);
        let a = expert_relocation(&rep_all, &loads, &topo, 2);
        let b = expert_relocation_on(&rep_all, &loads, &topo, 2, &all);
        assert_eq!(a, b);
    }
}
