//! Token routing strategies — the `S[i][j][k]` tensor of Tab. 1.

use crate::layout::ExpertLayout;
use laer_cluster::{DeviceId, ExpertId};
use laer_routing::RoutingMatrix;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A violation of the routing-correctness constraint (Eq. 4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoutingViolation {
    /// `Σ_k S[i][j][k] != R[i][j]` for some `(i, j)`.
    Conservation {
        /// Source device.
        device: DeviceId,
        /// Expert.
        expert: ExpertId,
        /// Routed total.
        routed: u64,
        /// Required total from `R`.
        required: u64,
    },
    /// Tokens were sent to a device that hosts no replica of the expert.
    MissingReplica {
        /// Destination device.
        device: DeviceId,
        /// Expert.
        expert: ExpertId,
    },
}

impl fmt::Display for RoutingViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoutingViolation::Conservation {
                device,
                expert,
                routed,
                required,
            } => write!(
                f,
                "routing for ({device}, {expert}) moves {routed} tokens, R requires {required}"
            ),
            RoutingViolation::MissingReplica { device, expert } => {
                write!(
                    f,
                    "tokens sent to {device} which hosts no replica of {expert}"
                )
            }
        }
    }
}

impl std::error::Error for RoutingViolation {}

/// Sparse `S[i][j][k]`: the number of tokens on device `i`, routed to
/// expert `j`, sent to device `k` for computation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenRouting {
    devices: usize,
    experts: usize,
    /// Entries `(source, expert, destination, tokens)` with tokens > 0.
    entries: Vec<(DeviceId, ExpertId, DeviceId, u64)>,
}

impl TokenRouting {
    /// Creates an empty routing for `devices × experts`.
    pub fn new(devices: usize, experts: usize) -> Self {
        Self {
            devices,
            experts,
            entries: Vec::new(),
        }
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.devices
    }

    /// Number of experts.
    pub fn num_experts(&self) -> usize {
        self.experts
    }

    /// Clears the routing and re-shapes it to `devices × experts`,
    /// keeping the entry vector's allocation for reuse across solves.
    pub fn reset(&mut self, devices: usize, experts: usize) {
        self.devices = devices;
        self.experts = experts;
        self.entries.clear();
    }

    /// Records `tokens` moving from `src` to `dst` for `expert`.
    /// Zero-token records are dropped.
    pub fn push(&mut self, src: DeviceId, expert: ExpertId, dst: DeviceId, tokens: u64) {
        if tokens > 0 {
            self.entries.push((src, expert, dst, tokens));
        }
    }

    /// All non-zero entries.
    pub fn entries(&self) -> &[(DeviceId, ExpertId, DeviceId, u64)] {
        &self.entries
    }

    /// Token-expert assignments computed on each device:
    /// `compute_load[k] = Σ_{i,j} S[i][j][k]` — the per-device load whose
    /// maximum the cost model minimises (Fig. 10b plots it).
    pub fn device_compute_loads(&self) -> Vec<u64> {
        let mut loads = vec![0u64; self.devices];
        for &(_, _, dst, tokens) in &self.entries {
            loads[dst.index()] += tokens;
        }
        loads
    }

    /// Tokens leaving each device for remote computation (excludes
    /// `src == dst` local work).
    pub fn device_send_loads(&self) -> Vec<u64> {
        let mut loads = vec![0u64; self.devices];
        for &(src, _, dst, tokens) in &self.entries {
            if src != dst {
                loads[src.index()] += tokens;
            }
        }
        loads
    }

    /// Dense `(src, dst)` token matrix (row-major `devices × devices`),
    /// for conversion into an All-to-All traffic matrix.
    pub fn pairwise_tokens(&self) -> Vec<u64> {
        let mut m = vec![0u64; self.devices * self.devices];
        for &(src, _, dst, tokens) in &self.entries {
            m[src.index() * self.devices + dst.index()] += tokens;
        }
        m
    }

    /// Per-expert tokens computed on each device (`Σ_i S[i][j][k]` for
    /// fixed `j, k`), as a `devices × experts` row-major matrix. This is
    /// what the FSEP executor needs to size expert batches.
    pub fn expert_tokens_per_device(&self) -> Vec<u64> {
        let mut m = vec![0u64; self.devices * self.experts];
        for &(_, expert, dst, tokens) in &self.entries {
            m[dst.index() * self.experts + expert.index()] += tokens;
        }
        m
    }

    /// Verifies the two constraints of the optimisation problem:
    /// conservation (Eq. 4, `Σ_k S[i][j][k] = R[i][j]`) and placement
    /// (tokens only go to devices hosting the expert).
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(
        &self,
        demand: &RoutingMatrix,
        layout: &ExpertLayout,
    ) -> Result<(), RoutingViolation> {
        // Placement check.
        for &(_, expert, dst, _) in &self.entries {
            if layout.replica_count(dst, expert) == 0 {
                return Err(RoutingViolation::MissingReplica {
                    device: dst,
                    expert,
                });
            }
        }
        // Conservation check.
        let mut routed = vec![0u64; self.devices * self.experts];
        for &(src, expert, _, tokens) in &self.entries {
            routed[src.index() * self.experts + expert.index()] += tokens;
        }
        for i in 0..self.devices {
            for j in 0..self.experts {
                let required = demand.get(DeviceId::new(i), ExpertId::new(j));
                let got = routed[i * self.experts + j];
                if got != required {
                    return Err(RoutingViolation::Conservation {
                        device: DeviceId::new(i),
                        expert: ExpertId::new(j),
                        routed: got,
                        required,
                    });
                }
            }
        }
        Ok(())
    }

    /// Total tokens crossing device boundaries (the All-to-All dispatch
    /// volume in tokens).
    pub fn remote_tokens(&self) -> u64 {
        self.entries
            .iter()
            .filter(|&&(src, _, dst, _)| src != dst)
            .map(|&(_, _, _, t)| t)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout_2x2() -> ExpertLayout {
        // dev0 hosts expert0, dev1 hosts expert1.
        let mut l = ExpertLayout::empty(2, 2, 1).unwrap();
        l.add_replica(DeviceId::new(0), ExpertId::new(0));
        l.add_replica(DeviceId::new(1), ExpertId::new(1));
        l
    }

    #[test]
    fn loads_and_matrices() {
        let mut s = TokenRouting::new(2, 2);
        s.push(DeviceId::new(0), ExpertId::new(0), DeviceId::new(0), 10);
        s.push(DeviceId::new(0), ExpertId::new(1), DeviceId::new(1), 5);
        s.push(DeviceId::new(1), ExpertId::new(0), DeviceId::new(0), 7);
        assert_eq!(s.device_compute_loads(), vec![17, 5]);
        assert_eq!(s.device_send_loads(), vec![5, 7]);
        assert_eq!(s.remote_tokens(), 12);
        assert_eq!(s.pairwise_tokens(), vec![10, 5, 7, 0]);
        assert_eq!(s.expert_tokens_per_device(), vec![17, 0, 0, 5]);
    }

    #[test]
    fn zero_entries_dropped() {
        let mut s = TokenRouting::new(2, 2);
        s.push(DeviceId::new(0), ExpertId::new(0), DeviceId::new(0), 0);
        assert!(s.entries().is_empty());
    }

    #[test]
    fn validate_accepts_consistent_routing() {
        let r = RoutingMatrix::from_rows(2, 2, vec![10, 5, 7, 0]).unwrap();
        let mut s = TokenRouting::new(2, 2);
        s.push(DeviceId::new(0), ExpertId::new(0), DeviceId::new(0), 10);
        s.push(DeviceId::new(0), ExpertId::new(1), DeviceId::new(1), 5);
        s.push(DeviceId::new(1), ExpertId::new(0), DeviceId::new(0), 7);
        assert!(s.validate(&r, &layout_2x2()).is_ok());
    }

    #[test]
    fn validate_catches_conservation() {
        let r = RoutingMatrix::from_rows(2, 2, vec![10, 0, 0, 0]).unwrap();
        let mut s = TokenRouting::new(2, 2);
        s.push(DeviceId::new(0), ExpertId::new(0), DeviceId::new(0), 9);
        assert!(matches!(
            s.validate(&r, &layout_2x2()),
            Err(RoutingViolation::Conservation {
                routed: 9,
                required: 10,
                ..
            })
        ));
    }

    #[test]
    fn validate_catches_missing_replica() {
        let r = RoutingMatrix::from_rows(2, 2, vec![10, 0, 0, 0]).unwrap();
        let mut s = TokenRouting::new(2, 2);
        // Expert 0 lives on dev0 only; sending to dev1 is invalid.
        s.push(DeviceId::new(0), ExpertId::new(0), DeviceId::new(1), 10);
        assert!(matches!(
            s.validate(&r, &layout_2x2()),
            Err(RoutingViolation::MissingReplica { .. })
        ));
    }

    #[test]
    fn violation_display() {
        let v = RoutingViolation::MissingReplica {
            device: DeviceId::new(1),
            expert: ExpertId::new(0),
        };
        assert!(v.to_string().contains("no replica"));
    }
}
