//! Replica-count allocation — Alg. 4 (priority queue, Appendix C) and the
//! even scheme of Alg. 2 line 3.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Heap entry ordered by average load, ties broken toward the lower
/// expert index (deterministic).
#[derive(Debug, PartialEq)]
struct HeapItem {
    avg_load: f64,
    expert: Reverse<usize>,
}

impl Eq for HeapItem {}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.avg_load
            .total_cmp(&other.avg_load)
            .then_with(|| self.expert.cmp(&other.expert))
    }
}

/// Alg. 4: proportional replica allocation via a priority queue.
///
/// Starts every expert at one replica and repeatedly grants an extra
/// replica to the expert with the highest *average* load (load divided by
/// its current replica count) until `N · C` replicas are allocated.
///
/// # Panics
///
/// Panics if `expert_loads` is empty or `n * c < expert_loads.len()`
/// (each expert needs at least one replica).
pub fn replica_allocation(expert_loads: &[u64], n: usize, c: usize) -> Vec<usize> {
    let e = expert_loads.len();
    assert!(e > 0, "at least one expert");
    assert!(
        n * c >= e,
        "total replicas {} cannot cover {e} experts",
        n * c
    );
    let mut rep = vec![1usize; e];
    let mut heap: BinaryHeap<HeapItem> = (0..e)
        .map(|i| HeapItem {
            avg_load: expert_loads[i] as f64,
            expert: Reverse(i),
        })
        .collect();
    let mut allocated = e;
    while allocated < n * c {
        let Some(top) = heap.pop() else {
            unreachable!("heap tracks every expert");
        };
        let i = top.expert.0;
        rep[i] += 1;
        allocated += 1;
        heap.push(HeapItem {
            avg_load: expert_loads[i] as f64 / rep[i] as f64,
            expert: Reverse(i),
        });
    }
    rep
}

/// The even allocation of Alg. 2 line 3: `⌊N·C/E⌋` replicas per expert,
/// with any remainder granted to the highest-load experts (deterministic
/// tie-break toward lower index).
///
/// # Panics
///
/// Panics under the same conditions as [`replica_allocation`].
pub fn even_replicas(expert_loads: &[u64], n: usize, c: usize) -> Vec<usize> {
    let e = expert_loads.len();
    assert!(e > 0, "at least one expert");
    assert!(
        n * c >= e,
        "total replicas {} cannot cover {e} experts",
        n * c
    );
    let base = (n * c) / e;
    let mut rep = vec![base; e];
    let remainder = n * c - base * e;
    if remainder > 0 {
        let mut order: Vec<usize> = (0..e).collect();
        order.sort_by(|&a, &b| expert_loads[b].cmp(&expert_loads[a]).then(a.cmp(&b)));
        for &i in order.iter().take(remainder) {
            rep[i] += 1;
        }
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_total_replicas() {
        let rep = replica_allocation(&[100, 10, 10, 10], 4, 2);
        assert_eq!(rep.iter().sum::<usize>(), 8);
        assert!(rep.iter().all(|&r| r >= 1));
    }

    #[test]
    fn hot_expert_gets_more_replicas() {
        let rep = replica_allocation(&[800, 100, 50, 50], 8, 2);
        assert!(rep[0] > rep[1]);
        assert!(rep[1] >= rep[2]);
        assert_eq!(rep.iter().sum::<usize>(), 16);
    }

    /// The priority-queue rule equalises average load: no expert's
    /// average load should exceed another's by more than one granting
    /// step.
    #[test]
    fn average_loads_are_equalised() {
        let loads = [900u64, 300, 300, 100, 50, 50, 25, 25];
        let rep = replica_allocation(&loads, 16, 2);
        assert_eq!(rep.iter().sum::<usize>(), 32);
        let avg: Vec<f64> = loads
            .iter()
            .zip(&rep)
            .map(|(&l, &r)| l as f64 / r as f64)
            .collect();
        let max = avg.iter().fold(0.0f64, |a, &b| a.max(b));
        // Any expert whose replica count could still be reduced by one
        // without dropping below 1 must, at rep-1, exceed the max average
        // (otherwise the queue would have granted elsewhere).
        for (i, &r) in rep.iter().enumerate() {
            if r > 1 {
                let before_last_grant = loads[i] as f64 / (r - 1) as f64;
                assert!(
                    before_last_grant >= max - 1e-9,
                    "expert {i} was over-granted: {before_last_grant} < {max}"
                );
            }
        }
    }

    #[test]
    fn uniform_loads_give_uniform_replicas() {
        let rep = replica_allocation(&[10, 10, 10, 10], 8, 2);
        assert_eq!(rep, vec![4, 4, 4, 4]);
    }

    #[test]
    fn even_scheme_is_even() {
        let rep = even_replicas(&[5, 5, 5, 5], 8, 2);
        assert_eq!(rep, vec![4, 4, 4, 4]);
    }

    #[test]
    fn even_scheme_remainder_to_hot_experts() {
        // N*C = 10 over 4 experts: base 2, remainder 2 -> hottest two.
        let rep = even_replicas(&[10, 40, 20, 5], 5, 2);
        assert_eq!(rep.iter().sum::<usize>(), 10);
        assert_eq!(rep[1], 3);
        assert_eq!(rep[2], 3);
        assert_eq!(rep[0], 2);
        assert_eq!(rep[3], 2);
    }

    #[test]
    fn deterministic_tie_breaks() {
        let a = replica_allocation(&[10, 10, 10], 3, 2);
        let b = replica_allocation(&[10, 10, 10], 3, 2);
        assert_eq!(a, b);
        assert_eq!(a.iter().sum::<usize>(), 6);
    }

    #[test]
    #[should_panic(expected = "cannot cover")]
    fn insufficient_replicas_panics() {
        let _ = replica_allocation(&[1, 1, 1, 1], 1, 2);
    }
}
