//! Local-search refinement of expert layouts — the "more efficient and
//! effective planners" the paper names as future work (Sec. 5.2).
//!
//! Starting from a greedy plan (Alg. 2's output), hill-climb over two
//! move types while the objective improves:
//!
//! * **swap** — exchange one replica slot between two devices;
//! * **retarget** — replace a replica of one expert with a replica of
//!   another on the same device (changes the replica vector).
//!
//! Every accepted move is re-routed with lite routing and re-scored with
//! the Eq. 2 objective, so the search optimises exactly what the tuner
//! optimises. The search is deterministic (first-improvement over a
//! fixed move order) and budget-bounded.
//!
//! Probing runs through [`crate::delta::IncrementalCost`]: a candidate
//! move re-routes only the two affected experts' columns and re-folds
//! the cached rows, instead of rebuilding the layout and re-routing all
//! `n·e` cells. The selection is bit-identical to the from-scratch path
//! ([`refine_layout_scratch`], kept as the testing oracle) because the
//! delta evaluator reproduces `lite_route` + `time_cost` bit for bit.
//!
//! **Budget semantics:** `budget` bounds *priced* candidates — moves
//! that reach routing + cost evaluation. Moves rejected by the cheap
//! structural guards (no replica to move, expert would lose its last
//! replica, destination already hosts the expert) cost no budget; they
//! are filtered before the counter. [`RefinedPlan::probes_evaluated`]
//! reports the priced count, which is what the throughput benchmarks
//! meter.

use crate::cost::{time_cost, CostBreakdown, CostParams};
use crate::delta::IncrementalCost;
use crate::layout::ExpertLayout;
use crate::lite_routing::lite_route;
use crate::token_routing::TokenRouting;
use laer_cluster::{DeviceId, ExpertId, Topology};
use laer_routing::RoutingMatrix;

/// Outcome of a refinement pass.
#[derive(Debug, Clone)]
pub struct RefinedPlan {
    /// The refined layout.
    pub layout: ExpertLayout,
    /// Routing under the refined layout.
    pub routing: TokenRouting,
    /// Objective value of the refined plan.
    pub cost: CostBreakdown,
    /// Number of accepted moves.
    pub moves_accepted: usize,
    /// Number of candidate moves priced (routed + costed). Guard-rejected
    /// moves are not counted and consume no budget.
    pub probes_evaluated: usize,
}

/// Hill-climbs `layout` under `demand`, pricing at most `budget`
/// candidate moves. Never returns a plan worse than the input.
///
/// Probes run through the incremental evaluator; the chosen plan is
/// bit-identical to [`refine_layout_scratch`].
///
/// # Panics
///
/// Panics if shapes are inconsistent or the layout is invalid.
pub fn refine_layout(
    topo: &Topology,
    demand: &RoutingMatrix,
    layout: &ExpertLayout,
    params: &CostParams,
    budget: usize,
) -> RefinedPlan {
    if let Err(e) = layout.validate() {
        panic!("refine requires a valid layout: {e}");
    }
    let mut inc = IncrementalCost::new(topo, demand, layout, params);
    let mut cost = inc.cost();
    let mut accepted = 0usize;
    let mut evaluated = 0usize;

    // First-improvement search: scan from a consistent snapshot, apply
    // the first improving move, restart the scan on the new layout.
    while evaluated < budget {
        match find_improving_move(&mut inc, cost.total(), budget, &mut evaluated) {
            Some(cand_cost) => {
                cost = cand_cost;
                accepted += 1;
            }
            None => break,
        }
    }
    let refined = inc.layout();
    debug_assert!(refined.validate().is_ok());
    RefinedPlan {
        routing: inc.routing(),
        layout: refined,
        cost,
        moves_accepted: accepted,
        probes_evaluated: evaluated,
    }
}

/// Scans retarget and swap moves over a consistent layout snapshot and
/// applies the first improving candidate, if any, within the budget.
/// Returns the improved cost; on `None` the state is unchanged (every
/// probed move was reverted).
fn find_improving_move(
    inc: &mut IncrementalCost<'_>,
    current_total: f64,
    budget: usize,
    evaluated: &mut usize,
) -> Option<CostBreakdown> {
    let n = inc.layout().num_devices();
    let e = inc.layout().num_experts();
    // Move type 1: retarget a replica (device d: expert a -> b).
    for d in 0..n {
        for a in 0..e {
            if inc.replica_count(DeviceId::new(d), ExpertId::new(a)) == 0
                || inc.expert_replicas(ExpertId::new(a)) < 2
            {
                continue;
            }
            for b in 0..e {
                if a == b || inc.replica_count(DeviceId::new(d), ExpertId::new(b)) > 0 {
                    continue;
                }
                if *evaluated >= budget {
                    return None;
                }
                *evaluated += 1;
                inc.apply_retarget(DeviceId::new(d), ExpertId::new(a), ExpertId::new(b));
                let cand_cost = inc.cost();
                if cand_cost.total() + 1e-12 < current_total {
                    return Some(cand_cost);
                }
                inc.revert();
            }
        }
    }
    // Move type 2: swap replica slots between two devices.
    for d1 in 0..n {
        for d2 in (d1 + 1)..n {
            for a in 0..e {
                if inc.replica_count(DeviceId::new(d1), ExpertId::new(a)) == 0 {
                    continue;
                }
                for b in 0..e {
                    if a == b
                        || inc.replica_count(DeviceId::new(d2), ExpertId::new(b)) == 0
                        || inc.replica_count(DeviceId::new(d1), ExpertId::new(b)) > 0
                        || inc.replica_count(DeviceId::new(d2), ExpertId::new(a)) > 0
                    {
                        continue;
                    }
                    if *evaluated >= budget {
                        return None;
                    }
                    *evaluated += 1;
                    inc.apply_swap(
                        DeviceId::new(d1),
                        ExpertId::new(a),
                        DeviceId::new(d2),
                        ExpertId::new(b),
                    );
                    let cand_cost = inc.cost();
                    if cand_cost.total() + 1e-12 < current_total {
                        return Some(cand_cost);
                    }
                    inc.revert();
                }
            }
        }
    }
    None
}

/// The pre-delta from-scratch refiner: every probe rebuilds the layout,
/// re-routes all cells with `lite_route` and re-scores with `time_cost`.
/// Kept as the reference implementation — the delta path must select
/// bit-identically (tested in `tests/proptests.rs`) — and as the
/// baseline side of the probe-throughput benchmarks.
///
/// # Panics
///
/// As [`refine_layout`].
pub fn refine_layout_scratch(
    topo: &Topology,
    demand: &RoutingMatrix,
    layout: &ExpertLayout,
    params: &CostParams,
    budget: usize,
) -> RefinedPlan {
    if let Err(e) = layout.validate() {
        panic!("refine requires a valid layout: {e}");
    }
    let mut current = layout.clone();
    let mut routing = lite_route(topo, demand, &current);
    let mut cost = time_cost(topo, &routing, params);
    let mut accepted = 0usize;
    let mut evaluated = 0usize;
    while evaluated < budget {
        match find_improving_move_scratch(
            topo,
            demand,
            &current,
            cost.total(),
            params,
            budget,
            &mut evaluated,
        ) {
            Some((cand, cand_routing, cand_cost)) => {
                current = cand;
                routing = cand_routing;
                cost = cand_cost;
                accepted += 1;
            }
            None => break,
        }
    }
    debug_assert!(current.validate().is_ok());
    RefinedPlan {
        layout: current,
        routing,
        cost,
        moves_accepted: accepted,
        probes_evaluated: evaluated,
    }
}

/// The from-scratch scan behind [`refine_layout_scratch`].
#[allow(clippy::too_many_arguments)]
fn find_improving_move_scratch(
    topo: &Topology,
    demand: &RoutingMatrix,
    current: &ExpertLayout,
    current_total: f64,
    params: &CostParams,
    budget: usize,
    evaluated: &mut usize,
) -> Option<(ExpertLayout, TokenRouting, CostBreakdown)> {
    let n = current.num_devices();
    let e = current.num_experts();
    for d in 0..n {
        for a in 0..e {
            if current.replica_count(DeviceId::new(d), ExpertId::new(a)) == 0
                || current.expert_replicas(ExpertId::new(a)) < 2
            {
                continue;
            }
            for b in 0..e {
                if a == b || current.replica_count(DeviceId::new(d), ExpertId::new(b)) > 0 {
                    continue;
                }
                if *evaluated >= budget {
                    return None;
                }
                *evaluated += 1;
                let candidate = retarget(current, d, a, b);
                let cand_routing = lite_route(topo, demand, &candidate);
                let cand_cost = time_cost(topo, &cand_routing, params);
                if cand_cost.total() + 1e-12 < current_total {
                    return Some((candidate, cand_routing, cand_cost));
                }
            }
        }
    }
    for d1 in 0..n {
        for d2 in (d1 + 1)..n {
            for a in 0..e {
                if current.replica_count(DeviceId::new(d1), ExpertId::new(a)) == 0 {
                    continue;
                }
                for b in 0..e {
                    if a == b
                        || current.replica_count(DeviceId::new(d2), ExpertId::new(b)) == 0
                        || current.replica_count(DeviceId::new(d1), ExpertId::new(b)) > 0
                        || current.replica_count(DeviceId::new(d2), ExpertId::new(a)) > 0
                    {
                        continue;
                    }
                    if *evaluated >= budget {
                        return None;
                    }
                    *evaluated += 1;
                    let candidate = swap(current, d1, a, d2, b);
                    let cand_routing = lite_route(topo, demand, &candidate);
                    let cand_cost = time_cost(topo, &cand_routing, params);
                    if cand_cost.total() + 1e-12 < current_total {
                        return Some((candidate, cand_routing, cand_cost));
                    }
                }
            }
        }
    }
    None
}

/// Rebuilds `layout` with one replica on device `d` moved from expert
/// `a` to expert `b`.
fn retarget(layout: &ExpertLayout, d: usize, a: usize, b: usize) -> ExpertLayout {
    rebuild(layout, |dev, ex, count| {
        if dev == d && ex == a {
            count - 1
        } else if dev == d && ex == b {
            count + 1
        } else {
            count
        }
    })
}

/// Rebuilds `layout` with device `d1`'s replica of `a` and device
/// `d2`'s replica of `b` exchanged.
fn swap(layout: &ExpertLayout, d1: usize, a: usize, d2: usize, b: usize) -> ExpertLayout {
    rebuild(layout, |dev, ex, count| {
        if (dev == d1 && ex == a) || (dev == d2 && ex == b) {
            count - 1
        } else if (dev == d1 && ex == b) || (dev == d2 && ex == a) {
            count + 1
        } else {
            count
        }
    })
}

fn rebuild(layout: &ExpertLayout, f: impl Fn(usize, usize, i64) -> i64) -> ExpertLayout {
    let mut out = ExpertLayout::empty(
        layout.num_devices(),
        layout.num_experts(),
        layout.capacity(),
    )
    .unwrap_or_else(|_| unreachable!("rebuilding with the source layout's own shape"));
    for d in 0..layout.num_devices() {
        for e in 0..layout.num_experts() {
            let count = layout.replica_count(DeviceId::new(d), ExpertId::new(e)) as i64;
            let new_count = f(d, e, count);
            debug_assert!(new_count >= 0, "move produced negative replica count");
            for _ in 0..new_count {
                out.add_replica(DeviceId::new(d), ExpertId::new(e));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuner::{Planner, PlannerConfig};
    use laer_routing::{RoutingGenerator, RoutingGeneratorConfig};

    fn setup(seed: u64) -> (Topology, RoutingMatrix, CostParams) {
        let topo = Topology::new(2, 4).unwrap();
        let demand = RoutingGenerator::new(RoutingGeneratorConfig::new(8, 8, 8192).with_seed(seed))
            .next_iteration();
        (topo, demand, CostParams::mixtral_8x7b())
    }

    #[test]
    fn refinement_never_hurts() {
        for seed in 1u64..6 {
            let (topo, demand, params) = setup(seed);
            let planner = Planner::new(PlannerConfig::new(2), params, topo.clone());
            let plan = planner.plan(&demand);
            let refined = refine_layout(&topo, &demand, &plan.layout, &params, 2000);
            assert!(refined.layout.validate().is_ok());
            assert!(refined.routing.validate(&demand, &refined.layout).is_ok());
            assert!(
                refined.cost.total() <= plan.predicted.total() + 1e-12,
                "seed {seed}: refined {} vs greedy {}",
                refined.cost.total(),
                plan.predicted.total()
            );
        }
    }

    #[test]
    fn refinement_improves_a_bad_layout() {
        let (topo, demand, params) = setup(7);
        // Start from the static classic layout (ignores the skew).
        let classic = ExpertLayout::classic_ep(8, 8, 2).unwrap();
        let before = time_cost(&topo, &lite_route(&topo, &demand, &classic), &params);
        let refined = refine_layout(&topo, &demand, &classic, &params, 5000);
        assert!(
            refined.cost.total() < before.total() * 0.9,
            "refinement should improve the static layout by >10%: {} -> {}",
            before.total(),
            refined.cost.total()
        );
        assert!(refined.moves_accepted > 0);
    }

    #[test]
    fn zero_budget_is_identity() {
        let (topo, demand, params) = setup(3);
        let classic = ExpertLayout::classic_ep(8, 8, 2).unwrap();
        let refined = refine_layout(&topo, &demand, &classic, &params, 0);
        assert_eq!(refined.layout, classic);
        assert_eq!(refined.moves_accepted, 0);
        assert_eq!(refined.probes_evaluated, 0);
    }

    #[test]
    fn refinement_is_deterministic() {
        let (topo, demand, params) = setup(9);
        let classic = ExpertLayout::classic_ep(8, 8, 2).unwrap();
        let a = refine_layout(&topo, &demand, &classic, &params, 1000);
        let b = refine_layout(&topo, &demand, &classic, &params, 1000);
        assert_eq!(a.layout, b.layout);
        assert_eq!(a.moves_accepted, b.moves_accepted);
        assert_eq!(a.probes_evaluated, b.probes_evaluated);
    }

    /// The delta-probing refiner and the from-scratch oracle walk the
    /// same move sequence and return bit-identical plans, move counts
    /// and probe counts.
    #[test]
    fn delta_selection_is_bit_identical_to_scratch() {
        for seed in [1u64, 4, 7, 9, 12] {
            let (topo, demand, params) = setup(seed);
            let classic = ExpertLayout::classic_ep(8, 8, 2).unwrap();
            for budget in [0usize, 37, 500, 5000] {
                let delta = refine_layout(&topo, &demand, &classic, &params, budget);
                let scratch = refine_layout_scratch(&topo, &demand, &classic, &params, budget);
                assert_eq!(delta.layout, scratch.layout, "seed {seed} budget {budget}");
                assert_eq!(delta.routing.entries(), scratch.routing.entries());
                assert_eq!(delta.cost.comm.to_bits(), scratch.cost.comm.to_bits());
                assert_eq!(delta.cost.comp.to_bits(), scratch.cost.comp.to_bits());
                assert_eq!(delta.moves_accepted, scratch.moves_accepted);
                assert_eq!(delta.probes_evaluated, scratch.probes_evaluated);
            }
        }
    }

    /// Guard-rejected moves consume no budget: with a budget of exactly
    /// one, the single priced probe is the first move that passes the
    /// structural guards, however many guard rejections precede it.
    #[test]
    fn guard_rejections_consume_no_budget() {
        let (topo, demand, params) = setup(2);
        let classic = ExpertLayout::classic_ep(8, 8, 2).unwrap();
        let one = refine_layout(&topo, &demand, &classic, &params, 1);
        assert_eq!(one.probes_evaluated, 1, "exactly the budgeted probe runs");
        // The probe counter never exceeds the budget.
        for budget in [3usize, 10, 100] {
            let r = refine_layout(&topo, &demand, &classic, &params, budget);
            assert!(r.probes_evaluated <= budget);
        }
    }
}
