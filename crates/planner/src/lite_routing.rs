//! The lite routing algorithm — Alg. 3 of the paper (Appendix B).
//!
//! The token dispatcher must pick a replica for every token *fast* and
//! without global coordination: it uses only the (globally known) expert
//! layout and the device's own routing demand. For each expert, tokens
//! are spread evenly over the replicas inside the sender's node when any
//! exist, and evenly over all replicas otherwise — minimising inter-node
//! transfers, the paper's consideration (1).
//!
//! Two entry points share one implementation: [`lite_route`] allocates
//! fresh buffers per call, [`lite_route_with`] reuses a caller-held
//! [`RouteScratch`] so hot paths (the tuner's candidate loop, the
//! delta evaluator in [`crate::delta`]) route without per-cell
//! allocation. Both produce identical output — entry for entry, bit for
//! bit — because they run the same code.

use crate::layout::ExpertLayout;
use crate::token_routing::TokenRouting;
use laer_cluster::{DeviceId, ExpertId, NodeId, Topology};
use laer_routing::RoutingMatrix;

/// Reusable buffers for allocation-free routing: the per-cell target
/// list and the largest-remainder working set. One scratch serves any
/// shape — buffers grow to the largest cell seen and stay allocated.
#[derive(Debug, Default)]
pub struct RouteScratch {
    pub(crate) targets: Vec<(DeviceId, u32)>,
    pub(crate) shares: Vec<(usize, u64, f64)>,
    pub(crate) order: Vec<usize>,
}

impl RouteScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Runs lite routing for every source device, producing the full
/// `S[i][j][k]` strategy.
///
/// Equivalent to executing Alg. 3 independently on each rank (which is
/// how the GPU-side Triton kernel runs it) and concatenating the rows.
///
/// # Panics
///
/// Panics if the shapes of `demand`, `layout` and `topo` disagree, or if
/// some expert in demand has zero replicas (an invalid layout — validate
/// layouts first).
pub fn lite_route(topo: &Topology, demand: &RoutingMatrix, layout: &ExpertLayout) -> TokenRouting {
    lite_route_with(topo, demand, layout, &mut RouteScratch::new())
}

/// [`lite_route`] with caller-provided scratch buffers — the hot-path
/// variant that performs no per-cell allocation (only the returned
/// routing's entry vector is allocated).
///
/// # Panics
///
/// As [`lite_route`].
pub fn lite_route_with(
    topo: &Topology,
    demand: &RoutingMatrix,
    layout: &ExpertLayout,
    scratch: &mut RouteScratch,
) -> TokenRouting {
    let mut s = TokenRouting::new(demand.num_devices(), demand.num_experts());
    lite_route_into(topo, demand, layout, scratch, &mut s);
    s
}

/// [`lite_route_with`] writing into an existing routing (cleared first),
/// so repeated solves reuse the entry vector as well.
///
/// # Panics
///
/// As [`lite_route`].
pub fn lite_route_into(
    topo: &Topology,
    demand: &RoutingMatrix,
    layout: &ExpertLayout,
    scratch: &mut RouteScratch,
    out: &mut TokenRouting,
) {
    assert_eq!(demand.num_devices(), topo.num_devices(), "device count");
    assert_eq!(layout.num_devices(), topo.num_devices(), "layout devices");
    assert_eq!(layout.num_experts(), demand.num_experts(), "expert count");
    out.reset(demand.num_devices(), demand.num_experts());
    for rank in topo.devices() {
        route_one_rank(topo, demand, layout, rank, scratch, out);
    }
}

/// Alg. 3 for a single rank.
fn route_one_rank(
    topo: &Topology,
    demand: &RoutingMatrix,
    layout: &ExpertLayout,
    rank: DeviceId,
    scratch: &mut RouteScratch,
    out: &mut TokenRouting,
) {
    let node = topo.node_of(rank);
    for j in 0..demand.num_experts() {
        let expert = ExpertId::new(j);
        let tokens = demand.get(rank, expert);
        if tokens == 0 {
            continue;
        }
        fill_targets(topo, layout, expert, node, &mut scratch.targets);
        assert!(
            !scratch.targets.is_empty(),
            "layout hosts no replica of {expert}; validate layouts before routing"
        );
        let (targets, shares, order) = (&scratch.targets, &mut scratch.shares, &mut scratch.order);
        distribute_evenly_into(rank, tokens, targets, shares, order, |dst, count| {
            out.push(rank, expert, dst, count);
        });
    }
}

/// Fills `out` with the Alg. 3 target list for one `(sender-node,
/// expert)` cell: intra-node replicas first (lines 5-6), all replicas
/// globally otherwise (lines 8-9). Targets are in ascending device-id
/// order, matching [`ExpertLayout::replicas_in_node`] /
/// [`ExpertLayout::replica_devices`].
pub(crate) fn fill_targets(
    topo: &Topology,
    layout: &ExpertLayout,
    expert: ExpertId,
    node: NodeId,
    out: &mut Vec<(DeviceId, u32)>,
) {
    out.clear();
    for dev in topo.devices_on(node) {
        let c = layout.replica_count(dev, expert);
        if c > 0 {
            out.push((dev, c));
        }
    }
    if out.is_empty() {
        for i in 0..layout.num_devices() {
            let c = layout.replica_count(DeviceId::new(i), expert);
            if c > 0 {
                out.push((DeviceId::new(i), c));
            }
        }
    }
}

/// Splits `tokens` across `targets` proportionally to their replica
/// counts ("evenly distributed among all replicas"), with deterministic
/// largest-remainder rounding. Ties prefer the sender itself, then lower
/// device ids, keeping traffic local when possible.
///
/// Emits `(destination, tokens)` pairs in `targets` order, skipping
/// zero-token shares — the exact entry order and values of the original
/// allocating implementation, which the delta evaluator's bit-exactness
/// contract depends on.
pub(crate) fn distribute_evenly_into(
    src: DeviceId,
    tokens: u64,
    targets: &[(DeviceId, u32)],
    shares: &mut Vec<(usize, u64, f64)>,
    order: &mut Vec<usize>,
    mut emit: impl FnMut(DeviceId, u64),
) {
    let total_replicas: u64 = targets.iter().map(|&(_, c)| c as u64).sum();
    let mut assigned = 0u64;
    shares.clear();
    for (idx, &(_, count)) in targets.iter().enumerate() {
        let exact = tokens as f64 * count as f64 / total_replicas as f64;
        let floor = exact.floor() as u64;
        assigned += floor;
        shares.push((idx, floor, exact - floor as f64));
    }
    order.clear();
    order.extend(0..shares.len());
    order.sort_by(|&a, &b| {
        let (ia, _, ra) = shares[a];
        let (ib, _, rb) = shares[b];
        rb.total_cmp(&ra).then_with(|| {
            // Prefer the sender itself, then lower device ids.
            let la = targets[ia].0 == src;
            let lb = targets[ib].0 == src;
            lb.cmp(&la).then(targets[ia].0.cmp(&targets[ib].0))
        })
    });
    let mut left = tokens - assigned;
    let mut cursor = 0;
    while left > 0 {
        let slot = order[cursor % order.len()];
        shares[slot].1 += 1;
        left -= 1;
        cursor += 1;
    }
    for &(idx, count, _) in shares.iter() {
        if count > 0 {
            emit(targets[idx].0, count);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laer_routing::RoutingMatrix;

    /// Two nodes of two devices; expert 0 replicated on devices 0 and 2
    /// (one per node), expert 1 on devices 1 and 3.
    fn cross_node_setup() -> (Topology, ExpertLayout) {
        let topo = Topology::new(2, 2).unwrap();
        let l = ExpertLayout::classic_ep(4, 2, 1).unwrap();
        (topo, l)
    }

    #[test]
    fn prefers_intra_node_replica() {
        let (topo, l) = cross_node_setup();
        // Device 1 (node 0) demands expert 0: replicas on dev 0 (node 0)
        // and dev 2 (node 1) -> all tokens must stay on node 0.
        let mut r = RoutingMatrix::zeros(4, 2).unwrap();
        r.set(DeviceId::new(1), ExpertId::new(0), 100);
        let s = lite_route(&topo, &r, &l);
        assert!(s.validate(&r, &l).is_ok());
        assert_eq!(s.entries().len(), 1);
        assert_eq!(
            s.entries()[0],
            (DeviceId::new(1), ExpertId::new(0), DeviceId::new(0), 100)
        );
    }

    #[test]
    fn splits_across_intra_node_replicas() {
        let topo = Topology::single_node(4).unwrap();
        let mut l = ExpertLayout::empty(4, 4, 1).unwrap();
        // Expert 0 on devices 0 and 1; experts 1-3 parked elsewhere.
        l.add_replica(DeviceId::new(0), ExpertId::new(0));
        l.add_replica(DeviceId::new(1), ExpertId::new(0));
        l.add_replica(DeviceId::new(2), ExpertId::new(1));
        l.add_replica(DeviceId::new(3), ExpertId::new(2));
        let mut r = RoutingMatrix::zeros(4, 4).unwrap();
        r.set(DeviceId::new(2), ExpertId::new(0), 101);
        let s = lite_route(&topo, &r, &l);
        let loads = s.device_compute_loads();
        // 101 split evenly over two replicas: 51/50 or 50/51.
        assert_eq!(loads[0] + loads[1], 101);
        assert!(loads[0].abs_diff(loads[1]) <= 1);
    }

    #[test]
    fn falls_back_to_global_replicas() {
        let (topo, l) = cross_node_setup();
        // Replicas of expert 0 are on devices 0 and 2; a sender on
        // node 1 (device 3) has an intra-node replica at dev 2. Make a
        // layout where expert 1 has replicas only on node 0.
        let mut l2 = ExpertLayout::empty(4, 2, 1).unwrap();
        l2.add_replica(DeviceId::new(0), ExpertId::new(1));
        l2.add_replica(DeviceId::new(1), ExpertId::new(1));
        l2.add_replica(DeviceId::new(2), ExpertId::new(0));
        l2.add_replica(DeviceId::new(3), ExpertId::new(0));
        let mut r = RoutingMatrix::zeros(4, 2).unwrap();
        r.set(DeviceId::new(3), ExpertId::new(1), 10); // node 1 -> node 0 only
        let s = lite_route(&topo, &r, &l2);
        assert!(s.validate(&r, &l2).is_ok());
        let loads = s.device_compute_loads();
        assert_eq!(loads[0] + loads[1], 10);
        assert_eq!(loads[0], 5);
        assert_eq!(loads[1], 5);
        let _ = l; // silence unused in this test
    }

    #[test]
    fn conservation_holds_for_random_demands() {
        let topo = Topology::new(2, 4).unwrap();
        let l = ExpertLayout::classic_ep(8, 8, 2).unwrap();
        let mut gen = laer_routing::RoutingGenerator::new(
            laer_routing::RoutingGeneratorConfig::new(8, 8, 2048).with_seed(3),
        );
        for _ in 0..5 {
            let r = gen.next_iteration();
            let s = lite_route(&topo, &r, &l);
            assert!(s.validate(&r, &l).is_ok());
        }
    }

    #[test]
    fn replica_weight_respected() {
        let topo = Topology::single_node(2).unwrap();
        let mut l = ExpertLayout::empty(2, 2, 2).unwrap();
        // Device 0 hosts TWO replicas of expert 0, device 1 hosts one
        // replica plus expert 1.
        l.add_replica(DeviceId::new(0), ExpertId::new(0));
        l.add_replica(DeviceId::new(0), ExpertId::new(0));
        l.add_replica(DeviceId::new(1), ExpertId::new(0));
        l.add_replica(DeviceId::new(1), ExpertId::new(1));
        let mut r = RoutingMatrix::zeros(2, 2).unwrap();
        r.set(DeviceId::new(0), ExpertId::new(0), 90);
        let s = lite_route(&topo, &r, &l);
        let loads = s.device_compute_loads();
        assert_eq!(loads[0], 60); // 2/3 of 90
        assert_eq!(loads[1], 30); // 1/3 of 90
    }

    #[test]
    fn remainder_prefers_sender() {
        let topo = Topology::single_node(2).unwrap();
        let mut l = ExpertLayout::empty(2, 2, 1).unwrap();
        l.add_replica(DeviceId::new(0), ExpertId::new(0));
        l.add_replica(DeviceId::new(1), ExpertId::new(0));
        let mut r = RoutingMatrix::zeros(2, 2).unwrap();
        r.set(DeviceId::new(1), ExpertId::new(0), 3);
        // Wait: layout has an orphan expert 1; fix by adding replicas.
        let mut l_ok = ExpertLayout::empty(2, 2, 2).unwrap();
        l_ok.add_replica(DeviceId::new(0), ExpertId::new(0));
        l_ok.add_replica(DeviceId::new(0), ExpertId::new(1));
        l_ok.add_replica(DeviceId::new(1), ExpertId::new(0));
        l_ok.add_replica(DeviceId::new(1), ExpertId::new(1));
        let s = lite_route(&topo, &r, &l_ok);
        let loads = s.device_compute_loads();
        // 3 tokens over 2 replicas: the odd token stays on the sender.
        assert_eq!(loads[1], 2);
        assert_eq!(loads[0], 1);
        let _ = l;
    }

    /// The scratch-reusing entry points reproduce the allocating path
    /// entry for entry across shapes and repeated solves.
    #[test]
    fn scratch_reuse_is_bit_identical() {
        let topo = Topology::new(2, 4).unwrap();
        let l = ExpertLayout::classic_ep(8, 8, 2).unwrap();
        let mut gen = laer_routing::RoutingGenerator::new(
            laer_routing::RoutingGeneratorConfig::new(8, 8, 4096).with_seed(9),
        );
        let mut scratch = RouteScratch::new();
        let mut reused = TokenRouting::new(8, 8);
        for _ in 0..4 {
            let r = gen.next_iteration();
            let fresh = lite_route(&topo, &r, &l);
            let with = lite_route_with(&topo, &r, &l, &mut scratch);
            lite_route_into(&topo, &r, &l, &mut scratch, &mut reused);
            assert_eq!(fresh.entries(), with.entries());
            assert_eq!(fresh.entries(), reused.entries());
        }
    }
}
