//! Property-based tests for the planner's core invariants: the
//! optimisation problem's constraints (Eqs. 3–4 of the paper) must hold
//! for *every* routing distribution, replica scheme and topology, not
//! just the unit-test examples.

// Test code may panic freely.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use laer_cluster::{DeviceId, ExpertId, Topology};
use laer_planner::{
    even_replicas, expert_relocation, lite_route, refine_layout, refine_layout_scratch,
    replica_allocation, CostParams, IncrementalCost, LoadPredictor, Planner, PlannerConfig,
    Predictor, ReplayPredictor,
};
use laer_routing::{RoutingGeneratorConfig, RoutingMatrix, RoutingTrace};
use proptest::prelude::*;

/// Strategy: a routing matrix for `devices × experts` with entries in
/// `0..max_tokens`.
fn demand_strategy(
    devices: usize,
    experts: usize,
    max_tokens: u64,
) -> impl Strategy<Value = RoutingMatrix> {
    proptest::collection::vec(0..max_tokens, devices * experts)
        .prop_map(move |data| RoutingMatrix::from_rows(devices, experts, data).expect("shape"))
}

/// Strategy: a small two-level topology.
fn topo_strategy() -> impl Strategy<Value = Topology> {
    (1usize..=4, 1usize..=4).prop_map(|(nodes, dpn)| Topology::new(nodes, dpn).expect("non-empty"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Alg. 4 output: every expert keeps ≥1 replica and the total is
    /// exactly N·C — for any load vector.
    #[test]
    fn replica_allocation_invariants(
        loads in proptest::collection::vec(0u64..100_000, 1..16),
        n in 1usize..64,
        c in 1usize..4,
    ) {
        prop_assume!(n * c >= loads.len());
        let rep = replica_allocation(&loads, n, c);
        prop_assert_eq!(rep.len(), loads.len());
        prop_assert_eq!(rep.iter().sum::<usize>(), n * c);
        prop_assert!(rep.iter().all(|&r| r >= 1));
        let even = even_replicas(&loads, n, c);
        prop_assert_eq!(even.iter().sum::<usize>(), n * c);
        prop_assert!(even.iter().all(|&r| r >= 1));
    }

    /// Alg. 4 grants replicas monotonically with load: a strictly
    /// heavier expert never gets fewer replicas than a lighter one.
    #[test]
    fn replica_allocation_is_monotone(
        loads in proptest::collection::vec(0u64..100_000, 2..10),
        c in 1usize..4,
    ) {
        let n = 16usize;
        prop_assume!(n * c >= loads.len());
        let rep = replica_allocation(&loads, n, c);
        for i in 0..loads.len() {
            for j in 0..loads.len() {
                if loads[i] > loads[j] {
                    prop_assert!(
                        rep[i] + 1 >= rep[j],
                        "load {} got {} replicas, load {} got {}",
                        loads[i], rep[i], loads[j], rep[j]
                    );
                }
            }
        }
    }

    /// Alg. 1 output is always a structurally valid layout (corrected
    /// constraint 3: every device filled to C, no orphan experts).
    #[test]
    fn relocation_produces_valid_layouts(
        topo in topo_strategy(),
        loads in proptest::collection::vec(0u64..50_000, 2..12),
        c in 1usize..4,
    ) {
        let n = topo.num_devices();
        prop_assume!(n * c >= loads.len());
        let rep = replica_allocation(&loads, n, c);
        let layout = expert_relocation(&rep, &loads, &topo, c);
        prop_assert!(layout.validate().is_ok());
        prop_assert_eq!(layout.replica_vector(), rep);
    }

    /// Alg. 3 satisfies constraint 4 for any demand and any valid
    /// layout: every token reaches a device hosting its expert, and
    /// token counts are conserved.
    #[test]
    fn lite_routing_satisfies_constraints(
        topo in topo_strategy(),
        seed_loads in proptest::collection::vec(1u64..1000, 2..8),
        c in 1usize..3,
        demand_scale in 1u64..2000,
    ) {
        let n = topo.num_devices();
        let e = seed_loads.len();
        prop_assume!(n * c >= e);
        let rep = replica_allocation(&seed_loads, n, c);
        let layout = expert_relocation(&rep, &seed_loads, &topo, c);
        // Demand derived from the seed loads, scaled.
        let mut demand = RoutingMatrix::zeros(n, e).expect("shape");
        for i in 0..n {
            for (j, &l) in seed_loads.iter().enumerate() {
                demand.set(
                    DeviceId::new(i),
                    ExpertId::new(j),
                    (l * demand_scale + i as u64) % 5000,
                );
            }
        }
        let routing = lite_route(&topo, &demand, &layout);
        prop_assert!(routing.validate(&demand, &layout).is_ok());
        // Compute loads conserve the total demand.
        let total: u64 = routing.device_compute_loads().iter().sum();
        prop_assert_eq!(total, demand.total());
    }

    /// The full planner produces valid plans with non-negative predicted
    /// costs for arbitrary demands, and the plan never has *higher*
    /// straggler load than the classic static layout.
    #[test]
    fn planner_plans_are_valid_and_no_worse(
        demand in demand_strategy(8, 8, 5000),
        // ε ≥ 2 keeps both base schemes in the candidate set (ε = 1
        // truncates to the proportional scheme alone).
        epsilon in 2usize..6,
    ) {
        let topo = Topology::new(2, 4).expect("2x4");
        let planner = Planner::new(
            PlannerConfig::new(2).with_epsilon(epsilon),
            CostParams::mixtral_8x7b(),
            topo.clone(),
        );
        let plan = planner.plan(&demand);
        prop_assert!(plan.layout.validate().is_ok());
        prop_assert!(plan.routing.validate(&demand, &plan.layout).is_ok());
        prop_assert!(plan.predicted.comm >= 0.0);
        prop_assert!(plan.predicted.comp >= 0.0);
        // Guaranteed by construction: the tuner's pick is never worse
        // (under the Eq. 2 objective) than the relocated even-allocation
        // candidate, which is always in the Both candidate set.
        let loads = demand.expert_loads();
        let even = even_replicas(&loads, 8, 2);
        let even_layout = expert_relocation(&even, &loads, &topo, 2);
        let even_routing = lite_route(&topo, &demand, &even_layout);
        let even_cost =
            laer_planner::cost::time_cost(&topo, &even_routing, planner.cost_params());
        prop_assert!(
            plan.predicted.total() <= even_cost.total() + 1e-12,
            "plan {} vs even candidate {}",
            plan.predicted.total(),
            even_cost.total()
        );
    }

    /// The load predictor's output is always a valid matrix with totals
    /// between the observed extremes.
    #[test]
    fn predictor_stays_in_observed_range(
        a in demand_strategy(4, 4, 1000),
        b in demand_strategy(4, 4, 1000),
        alpha in 0.1f64..1.0,
    ) {
        let mut p = LoadPredictor::new(alpha);
        p.observe(&a).expect("first observation");
        p.observe(&b).expect("same shape");
        let pred = p.predict().expect("warm");
        prop_assert_eq!(pred.num_devices(), 4);
        let lo = a.total().min(b.total());
        let hi = a.total().max(b.total());
        // Rounding may stray by at most one per cell.
        let cells = 16u64;
        prop_assert!(pred.total() + cells >= lo && pred.total() <= hi + cells);
    }

    /// The incremental evaluator tracks the from-scratch
    /// `lite_route` + `time_cost` oracle through any random sequence of
    /// retarget / swap / revert operations — to 1e-9 on totals and in
    /// fact bit-for-bit, the contract the refine/exact rewires rely on.
    #[test]
    fn incremental_cost_tracks_oracle_through_random_moves(
        topo in topo_strategy(),
        seed_loads in proptest::collection::vec(1u64..1000, 2..8),
        c in 1usize..3,
        demand_scale in 1u64..2000,
        op_seed in 0u64..10_000,
        latency_aware in any::<bool>(),
    ) {
        let n = topo.num_devices();
        let e = seed_loads.len();
        prop_assume!(n * c >= e);
        let rep = replica_allocation(&seed_loads, n, c);
        let layout = expert_relocation(&rep, &seed_loads, &topo, c);
        let mut demand = RoutingMatrix::zeros(n, e).expect("shape");
        for i in 0..n {
            for (j, &l) in seed_loads.iter().enumerate() {
                demand.set(
                    DeviceId::new(i),
                    ExpertId::new(j),
                    (l * demand_scale + i as u64) % 5000,
                );
            }
        }
        let params = CostParams::mixtral_8x7b().with_latency_aware(latency_aware);
        let mut inc = IncrementalCost::new(&topo, &demand, &layout, &params);
        // Reference state evolved in lockstep, plus a history stack for
        // revert.
        let mut reference = layout.clone();
        let mut history: Vec<laer_planner::ExpertLayout> = Vec::new();
        // Tiny deterministic xorshift for op choices.
        let mut state = op_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = move |m: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % m
        };
        let idx = |d: usize, j: usize| d * e + j;
        for _ in 0..12 {
            match next(3) {
                0 => {
                    // Retarget under the refiner's guards.
                    let mut moves = Vec::new();
                    for d in 0..n {
                        for a in 0..e {
                            if reference.replica_count(DeviceId::new(d), ExpertId::new(a)) == 0
                                || reference.expert_replicas(ExpertId::new(a)) < 2
                            {
                                continue;
                            }
                            for b in 0..e {
                                if a != b
                                    && reference
                                        .replica_count(DeviceId::new(d), ExpertId::new(b))
                                        == 0
                                {
                                    moves.push((d, a, b));
                                }
                            }
                        }
                    }
                    if moves.is_empty() {
                        continue;
                    }
                    let (d, a, b) = moves[next(moves.len() as u64) as usize];
                    inc.apply_retarget(DeviceId::new(d), ExpertId::new(a), ExpertId::new(b));
                    history.push(reference.clone());
                    let mut counts = reference.replica_counts().to_vec();
                    counts[idx(d, a)] -= 1;
                    counts[idx(d, b)] += 1;
                    reference =
                        laer_planner::ExpertLayout::from_counts(n, e, c, counts).expect("shape");
                }
                1 => {
                    // Swap under the refiner's guards.
                    let mut moves = Vec::new();
                    for d1 in 0..n {
                        for d2 in (d1 + 1)..n {
                            for a in 0..e {
                                if reference
                                    .replica_count(DeviceId::new(d1), ExpertId::new(a))
                                    == 0
                                {
                                    continue;
                                }
                                for b in 0..e {
                                    if a == b
                                        || reference
                                            .replica_count(DeviceId::new(d2), ExpertId::new(b))
                                            == 0
                                        || reference
                                            .replica_count(DeviceId::new(d1), ExpertId::new(b))
                                            > 0
                                        || reference
                                            .replica_count(DeviceId::new(d2), ExpertId::new(a))
                                            > 0
                                    {
                                        continue;
                                    }
                                    moves.push((d1, a, d2, b));
                                }
                            }
                        }
                    }
                    if moves.is_empty() {
                        continue;
                    }
                    let (d1, a, d2, b) = moves[next(moves.len() as u64) as usize];
                    inc.apply_swap(
                        DeviceId::new(d1),
                        ExpertId::new(a),
                        DeviceId::new(d2),
                        ExpertId::new(b),
                    );
                    history.push(reference.clone());
                    let mut counts = reference.replica_counts().to_vec();
                    counts[idx(d1, a)] -= 1;
                    counts[idx(d2, b)] -= 1;
                    counts[idx(d1, b)] += 1;
                    counts[idx(d2, a)] += 1;
                    reference =
                        laer_planner::ExpertLayout::from_counts(n, e, c, counts).expect("shape");
                }
                _ => {
                    let popped = history.pop();
                    prop_assert_eq!(inc.revert(), popped.is_some());
                    if let Some(prev) = popped {
                        reference = prev;
                    }
                }
            }
            prop_assert_eq!(&inc.layout(), &reference);
            let got = inc.cost();
            let oracle_routing = lite_route(&topo, &demand, &reference);
            let want = laer_planner::cost::time_cost(&topo, &oracle_routing, &params);
            prop_assert!((got.total() - want.total()).abs() <= 1e-9);
            prop_assert_eq!(got.comm.to_bits(), want.comm.to_bits());
            prop_assert_eq!(got.comp.to_bits(), want.comp.to_bits());
        }
        // Materialised routing is entry-identical at the final state.
        let materialized = inc.routing();
        let oracle = lite_route(&topo, &demand, &reference);
        prop_assert_eq!(materialized.entries(), oracle.entries());
    }

    /// The delta-probing refiner selects bit-identically to the
    /// from-scratch reference implementation for arbitrary instances
    /// and budgets.
    #[test]
    fn refine_delta_matches_scratch_oracle(
        topo in topo_strategy(),
        seed_loads in proptest::collection::vec(1u64..1000, 2..8),
        c in 1usize..3,
        demand_scale in 1u64..2000,
        budget in 0usize..250,
        latency_aware in any::<bool>(),
    ) {
        let n = topo.num_devices();
        let e = seed_loads.len();
        prop_assume!(n * c >= e);
        let rep = replica_allocation(&seed_loads, n, c);
        let layout = expert_relocation(&rep, &seed_loads, &topo, c);
        let mut demand = RoutingMatrix::zeros(n, e).expect("shape");
        for i in 0..n {
            for (j, &l) in seed_loads.iter().enumerate() {
                demand.set(
                    DeviceId::new(i),
                    ExpertId::new(j),
                    (l * demand_scale + i as u64) % 5000,
                );
            }
        }
        let params = CostParams::mixtral_8x7b().with_latency_aware(latency_aware);
        let delta = refine_layout(&topo, &demand, &layout, &params, budget);
        let scratch = refine_layout_scratch(&topo, &demand, &layout, &params, budget);
        prop_assert_eq!(&delta.layout, &scratch.layout);
        prop_assert_eq!(delta.routing.entries(), scratch.routing.entries());
        prop_assert_eq!(delta.cost.comm.to_bits(), scratch.cost.comm.to_bits());
        prop_assert_eq!(delta.cost.comp.to_bits(), scratch.cost.comp.to_bits());
        prop_assert_eq!(delta.moves_accepted, scratch.moves_accepted);
        prop_assert_eq!(delta.probes_evaluated, scratch.probes_evaluated);
    }

    /// A `ReplayPredictor` over a recorded trace reproduces the
    /// recorded matrices verbatim at noise 0 — after observing
    /// iteration `i` it predicts exactly the recorded demand of
    /// `i + 1`, which is what makes its audit error vanish.
    #[test]
    fn replay_reproduces_recorded_trace(
        devices in 1usize..5,
        experts in 1usize..6,
        budget in 1u64..2_000,
        seed in 0u64..10_000,
        iters in 1usize..6,
    ) {
        let cfg = RoutingGeneratorConfig::new(devices, experts, budget).with_seed(seed);
        let trace = RoutingTrace::record(cfg, iters);
        let mut p = ReplayPredictor::new(trace.clone(), 0.0, seed);
        let first = p.predict();
        prop_assert_eq!(first.as_ref(), trace.get(0));
        for i in 0..trace.len() {
            p.observe(trace.get(i).expect("recorded")).expect("same shape");
            if i + 1 < trace.len() {
                let served = p.predict();
                prop_assert_eq!(served.as_ref(), trace.get(i + 1));
            }
        }
    }
}
