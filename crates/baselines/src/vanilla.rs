//! Vanilla expert parallelism (GShard-style): fixed layout, routing
//! confined to the sender's EP group, no communication optimisations.
//!
//! This is the "default" configuration of Fig. 1(b): because EP groups
//! are consecutive devices (and therefore NVLink-local on the paper's
//! 8-GPU nodes), the All-to-All itself is cheap when balanced — the
//! imbalance cost manifests as collective wait time behind overloaded
//! devices.

use crate::context::SystemContext;
use crate::system::{LayerPlan, MoeSystem};
use laer_cluster::{DeviceId, ExpertId};
use laer_fsep::ScheduleOptions;
use laer_planner::{ExpertLayout, TokenRouting};
use laer_routing::RoutingMatrix;

/// Routes every token to the device hosting its expert *within the
/// sender's own EP group* — vanilla EP semantics (no cross-group help,
/// even if another group's replica idles).
///
/// # Panics
///
/// Panics if `experts % capacity != 0` or shapes disagree.
pub fn vanilla_routing(demand: &RoutingMatrix, capacity: usize) -> (ExpertLayout, TokenRouting) {
    let n = demand.num_devices();
    let e = demand.num_experts();
    assert_eq!(e % capacity, 0, "capacity must divide expert count");
    let p_ep = e / capacity;
    let layout = ExpertLayout::classic_ep(n, e, capacity)
        .unwrap_or_else(|e| unreachable!("classic EP layout: {e}"));
    let mut routing = TokenRouting::new(n, e);
    for i in 0..n {
        let src = DeviceId::new(i);
        let group_base = (i / p_ep) * p_ep;
        for j in 0..e {
            let expert = ExpertId::new(j);
            let tokens = demand.get(src, expert);
            if tokens == 0 {
                continue;
            }
            let dst = DeviceId::new(group_base + j / capacity);
            routing.push(src, expert, dst, tokens);
        }
    }
    (layout, routing)
}

/// Vanilla EP system: fixed layout, group-local routing, *no* Fig. 5
/// communication optimisations.
#[derive(Debug, Clone)]
pub struct VanillaEpSystem {
    ctx: SystemContext,
}

impl VanillaEpSystem {
    /// Creates the system.
    pub fn new(ctx: SystemContext) -> Self {
        Self { ctx }
    }
}

impl MoeSystem for VanillaEpSystem {
    fn name(&self) -> &'static str {
        "vanilla-ep"
    }

    fn schedule_options(&self) -> ScheduleOptions {
        ScheduleOptions::unoptimized()
    }

    fn plan_layer(&mut self, _layer: usize, _iteration: u64, demand: &RoutingMatrix) -> LayerPlan {
        let (layout, routing) = vanilla_routing(demand, self.ctx.capacity());
        let mut timings = self.ctx.layer_timings(
            &routing,
            0.0,
            self.ctx.fsdp_prefetch_time(),
            self.ctx.fsdp_grad_sync_time(),
        );
        timings.attention += crate::fsdp_ep::HOST_BOUND_OVERHEAD;
        let audit = crate::system::audit_belief(&self.ctx, "static-layout", &routing);
        LayerPlan {
            layout,
            routing,
            timings,
            audit,
        }
    }

    fn context(&self) -> &SystemContext {
        &self.ctx
    }

    fn context_mut(&mut self) -> &mut SystemContext {
        &mut self.ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laer_cluster::Topology;
    use laer_model::{GpuSpec, ModelPreset};
    use laer_routing::{RoutingGenerator, RoutingGeneratorConfig};

    fn ctx() -> SystemContext {
        SystemContext::new(
            Topology::paper_cluster(),
            ModelPreset::Mixtral8x7bE8k2.config(),
            GpuSpec::a100(),
            16 * 1024,
            8192,
        )
    }

    #[test]
    fn routing_is_valid_and_group_local() {
        let mut gen =
            RoutingGenerator::new(RoutingGeneratorConfig::new(32, 8, 32 * 1024).with_seed(1));
        let demand = gen.next_iteration();
        let (layout, routing) = vanilla_routing(&demand, 2);
        assert!(routing.validate(&demand, &layout).is_ok());
        // Group-local: every transfer stays within a block of P_ep = 4
        // consecutive devices.
        for &(src, _, dst, _) in routing.entries() {
            assert_eq!(src.index() / 4, dst.index() / 4, "{src} -> {dst}");
        }
    }

    /// On the paper cluster (8 devices per node, P_ep = 4), vanilla EP
    /// traffic never crosses nodes — the Fig. 1(b) premise that balanced
    /// A2A is cheap.
    #[test]
    fn traffic_stays_intra_node() {
        let topo = Topology::paper_cluster();
        let mut gen =
            RoutingGenerator::new(RoutingGeneratorConfig::new(32, 8, 32 * 1024).with_seed(2));
        let (_, routing) = vanilla_routing(&gen.next_iteration(), 2);
        for &(src, _, dst, _) in routing.entries() {
            assert!(topo.same_node(src, dst));
        }
    }

    #[test]
    fn skew_concentrates_compute() {
        let mut gen =
            RoutingGenerator::new(RoutingGeneratorConfig::new(32, 8, 32 * 1024).with_seed(3));
        let (_, routing) = vanilla_routing(&gen.next_iteration(), 2);
        let loads = routing.device_compute_loads();
        let max = *loads.iter().max().unwrap() as f64;
        let mean = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
        assert!(max / mean > 1.3, "skew should persist under vanilla EP");
    }

    #[test]
    fn system_produces_consistent_plan() {
        let mut sys = VanillaEpSystem::new(ctx());
        let mut gen =
            RoutingGenerator::new(RoutingGeneratorConfig::new(32, 8, 32 * 1024).with_seed(4));
        let demand = gen.next_iteration();
        let plan = sys.plan_layer(0, 0, &demand);
        assert!(plan.routing.validate(&demand, &plan.layout).is_ok());
        assert_eq!(plan.timings.dispatch.len(), 32);
        assert!(plan.max_token_ratio() > 1.0);
        assert_eq!(sys.schedule_options(), ScheduleOptions::unoptimized());
    }
}
