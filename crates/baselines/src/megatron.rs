//! The Megatron baseline with heterogeneous expert parallelism:
//! tensor-parallel attention + classic EP experts.
//!
//! Following Sec. 5.2: the >40 B-parameter e8k2 configurations force
//! `TP = 4` to fit the (unsharded) model state, hurting efficiency —
//! that memory pressure also halves the achievable micro-batch, modelled
//! as a fixed arithmetic-efficiency penalty on compute; the ~35 B e16k4
//! configurations run at `TP = 2`. Attention TP communication lands in
//! the "Others" breakdown bucket, reproducing the larger "Others" share
//! the paper reports for Megatron (Sec. 5.3).

use crate::context::SystemContext;
use crate::system::{LayerPlan, MoeSystem};
use crate::vanilla::vanilla_routing;
use laer_fsep::ScheduleOptions;
use laer_routing::RoutingMatrix;

/// Compute-efficiency penalty applied when memory pressure forces the
/// halved micro-batch (TP = 4 configs): smaller GEMMs run at lower MFU
/// and fixed per-micro-batch overheads amortise worse.
const SMALL_BATCH_COMPUTE_PENALTY: f64 = 1.15;

/// Megatron-LM with heterogeneous expert parallelism.
#[derive(Debug, Clone)]
pub struct MegatronSystem {
    ctx: SystemContext,
    tp: usize,
}

impl MegatronSystem {
    /// Creates the system; the TP degree is derived from the model's
    /// memory footprint (see [`SystemContext::megatron_tp`]).
    pub fn new(ctx: SystemContext) -> Self {
        let tp = ctx.megatron_tp();
        Self { ctx, tp }
    }

    /// The tensor-parallel degree in use.
    pub fn tp(&self) -> usize {
        self.tp
    }

    fn compute_penalty(&self) -> f64 {
        if self.tp >= 4 {
            SMALL_BATCH_COMPUTE_PENALTY
        } else {
            1.0
        }
    }
}

impl MoeSystem for MegatronSystem {
    fn name(&self) -> &'static str {
        "megatron"
    }

    fn schedule_options(&self) -> ScheduleOptions {
        // Megatron overlaps what it can; it has no parameter prefetch to
        // schedule (experts are resident), so the optimized schedule is
        // the fair setting.
        ScheduleOptions::optimized()
    }

    fn plan_layer(&mut self, _layer: usize, _iteration: u64, demand: &RoutingMatrix) -> LayerPlan {
        let (layout, routing) = vanilla_routing(demand, self.ctx.capacity());
        let mut timings = self.ctx.layer_timings(
            &routing,
            self.ctx.tp_attention_comm(self.tp),
            0.0, // experts resident: no parameter prefetch
            self.ctx.megatron_grad_sync_time(self.tp),
        );
        let penalty = self.compute_penalty();
        timings.attention *= penalty;
        for t in &mut timings.expert_forward {
            *t *= penalty;
        }
        let audit = crate::system::audit_belief(&self.ctx, "static-layout", &routing);
        LayerPlan {
            layout,
            routing,
            timings,
            audit,
        }
    }

    fn context(&self) -> &SystemContext {
        &self.ctx
    }

    fn context_mut(&mut self) -> &mut SystemContext {
        &mut self.ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laer_cluster::Topology;
    use laer_model::{GpuSpec, ModelPreset};
    use laer_routing::{RoutingGenerator, RoutingGeneratorConfig};

    fn ctx(preset: ModelPreset) -> SystemContext {
        SystemContext::new(
            Topology::paper_cluster(),
            preset.config(),
            GpuSpec::a100(),
            16 * 1024,
            8192,
        )
    }

    #[test]
    fn tp_depends_on_model_size() {
        assert_eq!(
            MegatronSystem::new(ctx(ModelPreset::Mixtral8x7bE8k2)).tp(),
            4
        );
        assert_eq!(
            MegatronSystem::new(ctx(ModelPreset::Mixtral8x7bE16k4)).tp(),
            2
        );
    }

    /// Sec. 5.3: Megatron's attention ("Others") time exceeds LAER's
    /// because of TP communication and the memory-forced smaller
    /// micro-batch.
    #[test]
    fn attention_time_exceeds_laer() {
        let demand =
            RoutingGenerator::new(RoutingGeneratorConfig::new(32, 8, 32 * 1024).with_seed(6))
                .next_iteration();
        let mut mega = MegatronSystem::new(ctx(ModelPreset::Mixtral8x7bE8k2));
        let mut laer = crate::LaerSystem::new(ctx(ModelPreset::Mixtral8x7bE8k2));
        let pm = mega.plan_layer(0, 0, &demand);
        let pl = laer.plan_layer(0, 0, &demand);
        assert!(pm.timings.attention > pl.timings.attention * 1.15);
        assert_eq!(pm.timings.prefetch, 0.0);
        assert!(pm.timings.grad_sync > 0.0);
    }

    /// The TP overhead gap between e8k2 (TP=4) and e16k4 (TP=2) is the
    /// mechanism behind the Fig. 8 win/loss flip.
    #[test]
    fn overhead_gap_between_configs() {
        let c8 = ctx(ModelPreset::Mixtral8x7bE8k2);
        let c16 = ctx(ModelPreset::Mixtral8x7bE16k4);
        let tp8 = c8.tp_attention_comm(4);
        let tp16 = c16.tp_attention_comm(2);
        // Analytically: 2(t−1)/t·t = 2(t−1), so TP=4 costs exactly 3x TP=2.
        assert!(tp8 >= 2.9 * tp16, "tp4 {tp8} vs tp2 {tp16}");
    }
}
