//! The evaluated training systems: LAER-MoE and the baselines of Sec. 5.
//!
//! Every system implements [`MoeSystem`]: per MoE layer and iteration it
//! receives the routing demand `R` and returns a [`LayerPlan`] — the
//! expert layout, the token routing, and the per-layer
//! [`laer_fsep::LayerTimings`] the simulator executes. Differences between
//! systems are exactly the paper's:
//!
//! | System | Layout | Routing | Extra costs |
//! |---|---|---|---|
//! | [`LaerSystem`] | per-iteration planner (Alg. 2) | lite routing (Alg. 3) | FSEP unshard/reshard (overlapped) |
//! | [`FsdpEpSystem`] | fixed classic EP | within the EP group | FSDP all-gather / reduce-scatter (overlapped, with the paper's comm opts) |
//! | [`MegatronSystem`] | fixed classic EP | within the EP group | TP all-reduce in attention, DP gradient all-reduce; larger TP forced on >40 B-parameter configs |
//! | [`FlexMoeSystem`] | incremental replica scheduler (≤ `max_changes` moves/iter, change penalty) on FSEP | lite routing | FSEP costs |
//! | [`SmartMoeSystem`] | periodic relocation, no replication | lite routing | FSEP costs, stale between refreshes |
//! | [`FasterMoeSystem`] | classic EP + shadows of the hottest experts on every device | lite routing over the shadowed layout | per-iteration shadow broadcast + shadow gradient all-reduce |
//! | [`VanillaEpSystem`] | fixed classic EP | within the EP group | no comm optimisations (the Fig. 1b "default") |

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

mod context;
mod fastermoe;
mod flexmoe;
mod fsdp_ep;
mod laer;
mod megatron;
mod smartmoe;
mod system;
mod vanilla;

pub use context::SystemContext;
pub use fastermoe::FasterMoeSystem;
pub use flexmoe::FlexMoeSystem;
pub use fsdp_ep::FsdpEpSystem;
pub use laer::{LaerSystem, PlanningMode};
pub use megatron::MegatronSystem;
pub use smartmoe::SmartMoeSystem;
pub use system::{
    audit_belief, predicted_bottleneck_device, LayerPlan, MoeSystem, SystemError, SystemKind,
};
pub use vanilla::{vanilla_routing, VanillaEpSystem};
