//! Shared cost context used by every system to turn a token routing into
//! per-layer operation timings.

use laer_cluster::{DegradedView, DeviceId, Topology};
use laer_model::{memory, CostModel, GpuSpec, ModelConfig, BF16_BYTES};
use laer_planner::{time_cost, CostBreakdown, CostParams, TokenRouting};
use laer_sim::{all_to_all_time, A2aMatrix};

/// Everything a system needs to cost its decisions: topology, model,
/// GPU spec and the per-iteration workload size.
#[derive(Debug, Clone)]
pub struct SystemContext {
    topo: Topology,
    model: ModelConfig,
    cost: CostModel,
    gpu: GpuSpec,
    params: CostParams,
    capacity: usize,
    tokens_per_device: u64,
    seq_len: usize,
    /// When set, token All-to-Alls are priced against this degraded
    /// network instead of the nominal topology.
    fault_view: Option<DegradedView>,
}

impl SystemContext {
    /// Creates a context. `tokens_per_device` is `S` (tokens, not
    /// assignments) per device per iteration.
    pub fn new(
        topo: Topology,
        model: ModelConfig,
        gpu: GpuSpec,
        tokens_per_device: u64,
        seq_len: usize,
    ) -> Self {
        let capacity = model.default_capacity();
        let cost = CostModel::new(&model, gpu);
        let params = CostParams::from_model(&model, gpu, false);
        Self {
            topo,
            model,
            cost,
            gpu,
            params,
            capacity,
            tokens_per_device,
            seq_len,
            fault_view: None,
        }
    }

    /// Installs (or clears) a degraded network view; subsequent
    /// [`SystemContext::a2a_times`] calls price against it.
    ///
    /// # Panics
    ///
    /// Panics if the view's base topology has a different device count
    /// than this context's topology.
    pub fn set_fault_view(&mut self, view: Option<DegradedView>) {
        if let Some(v) = &view {
            assert_eq!(
                v.base().num_devices(),
                self.topo.num_devices(),
                "fault view must match the context topology"
            );
        }
        self.fault_view = view;
    }

    /// The installed degraded network view, if any.
    pub fn fault_view(&self) -> Option<&DegradedView> {
        self.fault_view.as_ref()
    }

    /// The cluster topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The model configuration.
    pub fn model(&self) -> &ModelConfig {
        &self.model
    }

    /// The derived cost model.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// The Eq. 2 scalar parameters (`F_ckpt` off, matching the
    /// experiments' default schedules).
    pub fn cost_params(&self) -> &CostParams {
        &self.params
    }

    /// Prices a routing with the planner's Eq. 1 model (`T = T_comm +
    /// T_comp`) against the current network — the degraded view when a
    /// fault is installed, the nominal topology otherwise. Systems
    /// without their own planner belief use this to state what the cost
    /// model predicts for the layout they executed, so the decision
    /// audit can compare every system against simulated actuals.
    pub fn eq1_cost(&self, routing: &TokenRouting) -> CostBreakdown {
        match &self.fault_view {
            Some(view) => time_cost(view, routing, &self.params),
            None => time_cost(&self.topo, routing, &self.params),
        }
    }

    /// Expert capacity per device `C`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Tokens per device per iteration `S`.
    pub fn tokens_per_device(&self) -> u64 {
        self.tokens_per_device
    }

    /// Assignments per device per iteration (`S · K`).
    pub fn assignments_per_device(&self) -> u64 {
        self.tokens_per_device * self.model.top_k() as u64
    }

    /// Sequence length used for attention FLOPs.
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    /// Forward attention compute time per device (no TP), seconds.
    pub fn attention_forward_time(&self) -> f64 {
        self.tokens_per_device as f64 * self.model.attention_flops_per_token(self.seq_len) as f64
            / self.gpu.effective_flops()
    }

    /// Extra per-layer forward communication from tensor-parallel
    /// attention of degree `tp` (one ring all-reduce of the TP group's
    /// activations over NVLink).
    pub fn tp_attention_comm(&self, tp: usize) -> f64 {
        if tp <= 1 {
            return 0.0;
        }
        let group_tokens = self.tokens_per_device as f64 * tp as f64;
        let volume = group_tokens * self.model.hidden() as f64 * BF16_BYTES as f64;
        2.0 * (tp as f64 - 1.0) / tp as f64 * volume / self.topo.intra_bandwidth()
    }

    /// Per-device forward expert-compute times implied by a routing.
    pub fn expert_forward_times(&self, routing: &TokenRouting) -> Vec<f64> {
        routing
            .device_compute_loads()
            .into_iter()
            .map(|l| self.cost.expert_forward_time(l))
            .collect()
    }

    /// Per-device dispatch and combine All-to-All local costs implied by
    /// a routing (combine is the transpose of dispatch).
    pub fn a2a_times(&self, routing: &TokenRouting) -> (Vec<f64>, Vec<f64>) {
        let n = self.topo.num_devices();
        let token_bytes = self.cost.v_comm();
        let pair = routing.pairwise_tokens();
        let mut dispatch = A2aMatrix::new(n);
        let mut combine = A2aMatrix::new(n);
        for src in 0..n {
            for dst in 0..n {
                let tokens = pair[src * n + dst] as f64;
                if tokens > 0.0 && src != dst {
                    dispatch.add(DeviceId::new(src), DeviceId::new(dst), tokens * token_bytes);
                    combine.add(DeviceId::new(dst), DeviceId::new(src), tokens * token_bytes);
                }
            }
        }
        let (d, c) = match &self.fault_view {
            Some(view) => (
                all_to_all_time(view, &dispatch),
                all_to_all_time(view, &combine),
            ),
            None => (
                all_to_all_time(&self.topo, &dispatch),
                all_to_all_time(&self.topo, &combine),
            ),
        };
        let d = d.unwrap_or_else(|e| unreachable!("matrix sized from topology: {e}"));
        let c = c.unwrap_or_else(|e| unreachable!("matrix sized from topology: {e}"));
        (d, c)
    }

    /// FSEP unshard time per layer: balanced All-to-All of
    /// `C·(N−1)/N·Ψ_expert` plus the FSDP gather of the layer's non-expert
    /// parameters.
    pub fn fsep_prefetch_time(&self) -> f64 {
        let n = self.topo.num_devices();
        let expert_bytes = memory::fsep_unshard_volume_bytes(&self.model, n, self.capacity);
        (expert_bytes + self.other_param_gather_bytes()) / self.effective_a2a_bw()
    }

    /// Classic FSDP+EP unshard (all-gather) time per layer.
    pub fn fsdp_prefetch_time(&self) -> f64 {
        let p_fsdp = self.fsdp_degree();
        let expert_bytes = memory::fsdp_unshard_volume_bytes(&self.model, p_fsdp, self.capacity);
        (expert_bytes + self.other_param_gather_bytes()) / self.effective_a2a_bw()
    }

    /// FSEP gradient reshard time (same volume as unshard, Sec. 3.1).
    pub fn fsep_grad_sync_time(&self) -> f64 {
        self.fsep_prefetch_time()
    }

    /// FSDP+EP gradient reduce-scatter time.
    pub fn fsdp_grad_sync_time(&self) -> f64 {
        self.fsdp_prefetch_time()
    }

    /// Megatron per-layer gradient synchronisation: ring all-reduce of
    /// the hosted experts over the `N·C/E` replica groups plus the
    /// attention DP all-reduce across the `N / tp` groups.
    pub fn megatron_grad_sync_time(&self, tp: usize) -> f64 {
        let n = self.topo.num_devices();
        let e = self.model.experts();
        let replicas = (n * self.capacity) / e;
        let expert_bytes = (self.capacity as u64 * self.model.expert_params() * BF16_BYTES) as f64;
        let expert_ar = if replicas >= 2 {
            2.0 * (replicas as f64 - 1.0) / replicas as f64 * expert_bytes / self.effective_a2a_bw()
        } else {
            0.0
        };
        let dp = (n / tp.max(1)).max(1);
        let attn_bytes = (self.model.other_params_per_layer() * BF16_BYTES) as f64;
        let attn_ar = if dp >= 2 {
            2.0 * (dp as f64 - 1.0) / dp as f64 * attn_bytes / self.effective_a2a_bw()
        } else {
            0.0
        };
        expert_ar + attn_ar
    }

    /// All-gather bytes for a layer's non-expert parameters under FSDP.
    fn other_param_gather_bytes(&self) -> f64 {
        let n = self.topo.num_devices() as f64;
        (self.model.other_params_per_layer() * BF16_BYTES) as f64 * (n - 1.0) / n
    }

    /// The FSDP degree of the FSDP+EP baseline: `N / P_ep` with
    /// `P_ep = E / C`.
    pub fn fsdp_degree(&self) -> usize {
        let p_ep = (self.model.experts() / self.capacity).max(1);
        (self.topo.num_devices() / p_ep).max(2)
    }

    /// Effective per-device bandwidth for parameter collectives.
    pub fn effective_a2a_bw(&self) -> f64 {
        self.cost.effective_a2a_bandwidth(&self.topo)
    }

    /// Megatron's tensor-parallel degree: the smallest TP whose
    /// per-device memory fits the 80 GB budget at this context's token
    /// count (derived via [`laer_model::memory::megatron_min_tp`]; the
    /// paper observes the same outcome in Sec. 5.2 — the >40 B e8k2
    /// configs force TP = 4, the ~35 B e16k4 configs run at TP = 2).
    ///
    /// # Panics
    ///
    /// Panics if no TP degree up to the node size fits (the workload
    /// would OOM on the paper's hardware).
    pub fn megatron_tp(&self) -> usize {
        memory::megatron_min_tp(
            &self.model,
            self.topo.num_devices(),
            self.capacity,
            self.tokens_per_device,
            self.topo.devices_per_node(),
        )
        .unwrap_or_else(|| panic!("workload must fit device memory at some TP degree"))
    }

    /// Assembles the per-layer operation durations for a routing,
    /// given the system-specific attention-communication, prefetch and
    /// gradient-sync costs.
    pub fn layer_timings(
        &self,
        routing: &laer_planner::TokenRouting,
        tp_comm: f64,
        prefetch: f64,
        grad_sync: f64,
    ) -> laer_fsep::LayerTimings {
        let (dispatch, combine) = self.a2a_times(routing);
        laer_fsep::LayerTimings {
            attention: self.attention_forward_time() + tp_comm,
            dispatch,
            expert_forward: self.expert_forward_times(routing),
            combine,
            prefetch,
            grad_sync,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laer_model::ModelPreset;

    fn ctx(preset: ModelPreset) -> SystemContext {
        SystemContext::new(
            Topology::paper_cluster(),
            preset.config(),
            GpuSpec::a100(),
            16 * 1024,
            8192,
        )
    }

    #[test]
    fn tp_selection_follows_memory_pressure() {
        assert_eq!(ctx(ModelPreset::Mixtral8x7bE8k2).megatron_tp(), 4);
        assert_eq!(ctx(ModelPreset::Mixtral8x7bE16k4).megatron_tp(), 2);
        assert_eq!(ctx(ModelPreset::Mixtral8x22bE8k2).megatron_tp(), 4);
    }

    #[test]
    fn tp_comm_grows_with_degree() {
        let c = ctx(ModelPreset::Mixtral8x7bE8k2);
        assert_eq!(c.tp_attention_comm(1), 0.0);
        assert!(c.tp_attention_comm(4) > c.tp_attention_comm(2) * 2.0);
    }

    #[test]
    fn fsep_vs_fsdp_prefetch_ratio_near_one() {
        let c = ctx(ModelPreset::Mixtral8x7bE8k2);
        let ratio = c.fsep_prefetch_time() / c.fsdp_prefetch_time();
        // Sec. 3.1: ≈1.1 at P_fsep = 32, P_fsdp = 8 (attention-parameter
        // gather common to both pulls it slightly closer to 1).
        assert!(ratio > 1.0 && ratio < 1.15, "ratio {ratio}");
    }

    #[test]
    fn attention_time_is_macroscopic() {
        let c = ctx(ModelPreset::Mixtral8x7bE8k2);
        let t = c.attention_forward_time();
        assert!(t > 1e-3 && t < 100e-3, "attention {t}");
    }

    #[test]
    fn megatron_grad_sync_nonzero() {
        let c = ctx(ModelPreset::Mixtral8x7bE8k2);
        assert!(c.megatron_grad_sync_time(4) > 0.0);
    }

    /// With a degraded inter-node fabric installed, the same routing
    /// prices strictly slower — and clearing the view restores nominal
    /// costs.
    #[test]
    fn fault_view_raises_a2a_cost() {
        use laer_planner::lite_route;
        use laer_routing::{RoutingGenerator, RoutingGeneratorConfig};
        let mut c = ctx(ModelPreset::Mixtral8x7bE8k2);
        let demand =
            RoutingGenerator::new(RoutingGeneratorConfig::new(32, 8, 32 * 1024).with_seed(6))
                .next_iteration();
        let layout = laer_planner::ExpertLayout::classic_ep(32, 8, 2).unwrap();
        let routing = lite_route(c.topology(), &demand, &layout);
        let (nominal_d, _) = c.a2a_times(&routing);
        // Lite routing on the classic layout keeps traffic NVLink-local,
        // so degrade node 0's intra-node links.
        let mut view = DegradedView::new(c.topology().clone());
        for i in 0..8 {
            for j in (i + 1)..8 {
                view.degrade_link(DeviceId::new(i), DeviceId::new(j), 0.25);
            }
        }
        c.set_fault_view(Some(view));
        assert!(c.fault_view().is_some());
        let (degraded_d, _) = c.a2a_times(&routing);
        let nominal: f64 = nominal_d.iter().sum();
        let degraded: f64 = degraded_d.iter().sum();
        assert!(
            degraded > nominal,
            "degraded {degraded} should exceed nominal {nominal}"
        );
        c.set_fault_view(None);
        assert_eq!(c.a2a_times(&routing).0, nominal_d);
    }

    #[test]
    fn fsdp_degree_matches_paper_example() {
        // 32 devices, E = 8, C = 2 -> P_ep = 4, P_fsdp = 8.
        let c = ctx(ModelPreset::Mixtral8x7bE8k2);
        assert_eq!(c.fsdp_degree(), 8);
    }
}
