//! LAER-MoE as a [`MoeSystem`]: the FSEP executor driven by the
//! load-balancing planner, re-laying out experts *every iteration*.
//!
//! Two planning modes exist:
//!
//! * [`PlanningMode::Async`] (default) — faithful to the Fig. 7
//!   workflow: the layout tuner runs asynchronously on the CPU using the
//!   routing information of *previous* iterations (bridged by a
//!   [`Predictor`]), so the layout a layer executes is one iteration
//!   stale; the synchronous lite-routing dispatcher then routes the
//!   actual demand on that layout.
//! * [`PlanningMode::Oracle`] — plans with the current iteration's
//!   demand; an upper bound useful for measuring the staleness cost.
//!
//! Under async planning the demand predictor is pluggable
//! ([`PredictorKind`]): the paper's EMA by default, or recorded-trace
//! replay foresight ([`LaerSystem::install_replay`]) for RL
//! post-training workloads whose train phases re-visit rollout prompts.

use crate::context::SystemContext;
use crate::system::{audit_belief, LayerPlan, MoeSystem, SystemError};
use laer_cluster::DegradedView;
use laer_fsep::ScheduleOptions;
use laer_obs::PlanAudit;
use laer_planner::{
    lite_route, AnyPredictor, CostParams, ExpertLayout, Plan, PlanError, Planner, PlannerConfig,
    Predictor, PredictorKind, ReplayPredictor, ReplicaScheme,
};
use laer_routing::{RoutingMatrix, RoutingTrace};
use serde::{Deserialize, Serialize};

/// How the layout tuner sees the routing demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlanningMode {
    /// Plan the next iteration's layout from the history of previous
    /// iterations (Fig. 7's CPU-side tuner).
    Async,
    /// Plan with the current iteration's demand (staleness-free upper
    /// bound).
    Oracle,
}

/// What the tuner believed when it produced a layout: the predicted
/// Eq. 1 cost and the per-device loads of the (possibly stale) demand it
/// planned on. Checkpointed with the layout so an audit survives
/// restore.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Belief {
    comm: f64,
    comp: f64,
    loads: Vec<u64>,
}

impl Belief {
    fn of(plan: &Plan) -> Self {
        Self {
            comm: plan.predicted.comm,
            comp: plan.predicted.comp,
            loads: plan.routing.device_compute_loads(),
        }
    }

    fn audit(&self, trigger: &str) -> PlanAudit {
        PlanAudit::new(trigger, self.comm, self.comp, self.loads.clone())
    }
}

/// Per-layer asynchronous-tuner state (serializable: this is exactly
/// what a training checkpoint must capture to resume bit-identically).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct LayerState {
    predictor: AnyPredictor,
    next_layout: Option<ExpertLayout>,
    /// Belief attached to `next_layout`, consumed with it.
    next_belief: Option<Belief>,
    /// Whether `next_layout` was planned from recorded-trace foresight
    /// (audited with trigger "replay" instead of "periodic").
    #[serde(default)]
    next_from_replay: bool,
    /// The layout executed by the most recent iteration — the staleness
    /// fallback while the planner process is unreachable.
    last_layout: Option<ExpertLayout>,
    /// Belief attached to `last_layout`.
    last_belief: Option<Belief>,
}

impl LayerState {
    fn fresh(predictor: AnyPredictor) -> Self {
        Self {
            predictor,
            next_layout: None,
            next_belief: None,
            next_from_replay: false,
            last_layout: None,
            last_belief: None,
        }
    }
}

/// Recorded-trace replay setup shared by all layers: one trace per
/// layer, a mismatch-noise knob and the seed of the noise stream.
#[derive(Debug, Clone)]
struct ReplaySetup {
    traces: Vec<RoutingTrace>,
    noise: f64,
    seed: u64,
}

/// Serialized form of [`LaerSystem`]'s mutable state.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct LaerCheckpoint {
    layers: Vec<LayerState>,
}

/// The full LAER-MoE system (FSEP + planner).
#[derive(Debug, Clone)]
pub struct LaerSystem {
    ctx: SystemContext,
    planner: Planner,
    schedule: ScheduleOptions,
    mode: PlanningMode,
    layers: Vec<LayerState>,
    /// Installed replay traces (RL train phases); `None` means the
    /// configured predictor kind falls back to EMA.
    replay: Option<ReplaySetup>,
    /// Whether the asynchronous CPU planner process is reachable.
    planner_available: bool,
}

impl LaerSystem {
    /// Creates LAER-MoE with the full Alg. 2 planner, all Fig. 5
    /// communication optimisations and the asynchronous (Fig. 7)
    /// planning mode.
    pub fn new(ctx: SystemContext) -> Self {
        Self::with_scheme(ctx, ReplicaScheme::Both, ScheduleOptions::optimized())
    }

    /// Creates an ablated variant (Fig. 12): a single replica scheme
    /// and/or disabled communication optimisations.
    pub fn with_scheme(
        ctx: SystemContext,
        scheme: ReplicaScheme,
        schedule: ScheduleOptions,
    ) -> Self {
        let cost = CostParams::from_model(ctx.model(), ctx.cost().gpu(), false);
        let planner = Planner::new(
            PlannerConfig::new(ctx.capacity())
                .with_scheme(scheme)
                .with_epsilon(4),
            cost,
            ctx.topology().clone(),
        );
        Self {
            ctx,
            planner,
            schedule,
            mode: PlanningMode::Async,
            layers: Vec::new(),
            replay: None,
            planner_available: true,
        }
    }

    /// Selects the planning mode (default [`PlanningMode::Async`]).
    pub fn with_mode(mut self, mode: PlanningMode) -> Self {
        self.mode = mode;
        self
    }

    /// Enables the executor's chunked dispatch/combine pipeline (clamped
    /// to at least 1 chunk): the schedule splits every layer into
    /// `num_chunks` per-chunk A2A/expert spans AND the layout tuner
    /// prices candidates with the pipelined Eq. 1 model, so planning and
    /// execution agree on what "exposed communication" means.
    pub fn with_num_chunks(mut self, num_chunks: usize) -> Self {
        self.schedule = self.schedule.with_num_chunks(num_chunks);
        self.planner = self.planner.clone().with_num_chunks(num_chunks);
        self
    }

    /// Switches the tuner to recorded-trace replay foresight
    /// ([`PredictorKind::Replay`]): builder form of
    /// [`Self::install_replay`].
    pub fn with_replay(mut self, traces: Vec<RoutingTrace>, noise: f64, seed: u64) -> Self {
        self.install_replay(traces, noise, seed);
        self
    }

    /// Installs (or replaces) per-layer replay traces: `traces[l]`
    /// serves layer `l`'s demand foresight, perturbed by `noise` (0 =
    /// verbatim) with a deterministic stream keyed on `seed`.
    ///
    /// Every covered layer's predictor restarts at its new trace's
    /// first iteration — this is what an RL train phase calls at each
    /// epoch boundary with that epoch's rollout recording. Because the
    /// new trace supersedes whatever history the tuner planned from, any
    /// already-prepared layout is re-planned from the trace's first
    /// iteration (while the planner process is reachable), so foresight
    /// applies from the very first replayed step. Layers without a
    /// trace keep EMA behaviour, as does any layer once its trace is
    /// exhausted (the replay predictor's built-in fallback).
    ///
    /// # Panics
    ///
    /// Panics if a trace's matrix shapes disagree with the cluster
    /// topology (the planner's documented preconditions).
    pub fn install_replay(&mut self, traces: Vec<RoutingTrace>, noise: f64, seed: u64) {
        self.planner = self.planner.clone().with_predictor(PredictorKind::Replay);
        self.replay = Some(ReplaySetup {
            traces,
            noise,
            seed,
        });
        for layer in 0..self.layers.len() {
            self.layers[layer].predictor = self.fresh_predictor(layer);
            if !self.planner_available {
                continue;
            }
            let Some(predicted) = self.layers[layer].predictor.predict() else {
                continue;
            };
            let from_replay = self.layers[layer].predictor.serving_trace();
            if let Some(next) = self.plan_on_network(&predicted) {
                self.layers[layer].next_belief = Some(Belief::of(&next));
                self.layers[layer].next_layout = Some(next.layout);
                self.layers[layer].next_from_replay = from_replay;
            }
        }
    }

    /// The predictor a freshly materialized layer starts with, per the
    /// planner configuration's [`PredictorKind`].
    fn fresh_predictor(&self, layer: usize) -> AnyPredictor {
        if self.planner.config().predictor == PredictorKind::Replay {
            if let Some(setup) = &self.replay {
                if let Some(trace) = setup.traces.get(layer) {
                    return AnyPredictor::Replay(ReplayPredictor::new(
                        trace.clone(),
                        setup.noise,
                        setup.seed.wrapping_add(layer as u64),
                    ));
                }
            }
        }
        AnyPredictor::default_ema()
    }

    /// The planning mode in use.
    pub fn mode(&self) -> PlanningMode {
        self.mode
    }

    /// The planner in use.
    pub fn planner(&self) -> &Planner {
        &self.planner
    }

    fn layer_state(&mut self, layer: usize) -> &mut LayerState {
        while self.layers.len() <= layer {
            let predictor = self.fresh_predictor(self.layers.len());
            self.layers.push(LayerState::fresh(predictor));
        }
        &mut self.layers[layer]
    }

    /// Plans a layout against the current network: nominal topology
    /// normally, survivors-only with degraded pricing when a fault view
    /// is installed. Returns `None` when the degraded instance is
    /// unsatisfiable (callers fall back to a previous layout;
    /// [`MoeSystem::handle_device_failures`] has already rejected
    /// genuinely unrecoverable clusters).
    fn plan_on_network(&self, demand: &RoutingMatrix) -> Option<Plan> {
        match self.ctx.fault_view() {
            Some(view) if !view.is_nominal() => self.planner.plan_degraded(demand, view).ok(),
            _ => Some(self.planner.plan(demand)),
        }
    }

    /// The layout executed this iteration under async planning, plus the
    /// audit trigger and the belief the layout was planned with: the
    /// layout the CPU tuner prepared from history; while the planner is
    /// unreachable, the previous iteration's layout (one extra step of
    /// staleness); on a cold start, a synchronous plan from the current
    /// demand.
    fn async_layout(
        &mut self,
        layer: usize,
        demand: &RoutingMatrix,
    ) -> (ExpertLayout, &'static str, Option<Belief>) {
        let planner_available = self.planner_available;
        let state = self.layer_state(layer);
        if let Some(layout) = state.next_layout.take() {
            let belief = state.next_belief.take();
            let trigger = if state.next_from_replay {
                "replay"
            } else {
                "periodic"
            };
            return (layout, trigger, belief);
        }
        if !planner_available {
            if let Some(last) = state.last_layout.clone() {
                let belief = state.last_belief.clone();
                return (last, "outage-fallback", belief);
            }
        }
        if let Some(plan) = self.plan_on_network(demand) {
            let belief = Belief::of(&plan);
            return (plan.layout, "cold-start", Some(belief));
        }
        let state = self.layer_state(layer);
        if let Some(last) = state.last_layout.clone() {
            let belief = state.last_belief.clone();
            return (last, "outage-fallback", belief);
        }
        // Cold start with the planner down: the initial static layout
        // every MoE job boots with (no belief to record).
        let (n, e, c) = (
            self.ctx.topology().num_devices(),
            self.ctx.model().experts(),
            self.ctx.capacity(),
        );
        let layout = ExpertLayout::classic_ep(n, e, c)
            .unwrap_or_else(|e| unreachable!("model shapes validated at construction: {e}"));
        (layout, "cold-start", None)
    }
}

impl MoeSystem for LaerSystem {
    fn name(&self) -> &'static str {
        "laer-moe"
    }

    fn schedule_options(&self) -> ScheduleOptions {
        self.schedule
    }

    fn plan_layer(&mut self, layer: usize, _iteration: u64, demand: &RoutingMatrix) -> LayerPlan {
        let (layout, routing, audit) = match self.mode {
            PlanningMode::Oracle => {
                let plan = self.planner.plan(demand);
                let audit = Belief::of(&plan).audit("oracle");
                (plan.layout, plan.routing, audit)
            }
            PlanningMode::Async => {
                // Execute the layout prepared from history; the GPU-side
                // dispatcher routes the actual demand on it (Alg. 3).
                let (layout, trigger, belief) = self.async_layout(layer, demand);
                let routing = lite_route(self.ctx.topology(), demand, &layout);
                // The belief travels from the planning call site; when
                // none was recorded (boot fallback), price the executed
                // routing so the audit trail stays complete.
                let audit = match &belief {
                    Some(b) => b.audit(trigger),
                    None => audit_belief(&self.ctx, trigger, &routing),
                };
                // CPU side: fold this iteration's routing info into the
                // history and prepare the next iteration's layout — but
                // only while the planner process is reachable; during an
                // outage the system keeps re-executing `last_layout`.
                let state = self.layer_state(layer);
                if state.predictor.observe(demand).is_err() {
                    // Demand re-shaped mid-run: the accumulated history
                    // (and any installed trace) no longer describes
                    // this cluster. Restart from a fresh EMA — the
                    // first observation of which cannot fail — rather
                    // than poisoning the old state.
                    state.predictor = AnyPredictor::default_ema();
                    let _ = state.predictor.observe(demand);
                }
                state.last_layout = Some(layout.clone());
                state.last_belief = belief;
                if self.planner_available {
                    let from_replay = self.layers[layer].predictor.serving_trace();
                    let predicted = self.layers[layer]
                        .predictor
                        .predict()
                        .unwrap_or_else(|| demand.clone());
                    match self.plan_on_network(&predicted) {
                        Some(next) => {
                            self.layers[layer].next_belief = Some(Belief::of(&next));
                            self.layers[layer].next_layout = Some(next.layout);
                            self.layers[layer].next_from_replay = from_replay;
                        }
                        None => {
                            self.layers[layer].next_layout = Some(layout.clone());
                            self.layers[layer].next_belief = None;
                            self.layers[layer].next_from_replay = false;
                        }
                    }
                }
                (layout, routing, audit)
            }
        };
        let timings = self.ctx.layer_timings(
            &routing,
            0.0,
            self.ctx.fsep_prefetch_time(),
            self.ctx.fsep_grad_sync_time(),
        );
        LayerPlan {
            layout,
            routing,
            timings,
            audit,
        }
    }

    fn context(&self) -> &SystemContext {
        &self.ctx
    }

    fn context_mut(&mut self) -> &mut SystemContext {
        &mut self.ctx
    }

    fn handle_device_failures(&mut self, view: &DegradedView) -> Result<bool, SystemError> {
        let survivors = view.survivors();
        if survivors.is_empty() {
            return Err(PlanError::NoSurvivors.into());
        }
        let (capacity, experts) = (self.ctx.capacity(), self.ctx.model().experts());
        if survivors.len() * capacity < experts {
            return Err(PlanError::InsufficientCapacity {
                survivors: survivors.len(),
                capacity,
                experts,
            }
            .into());
        }
        // Prepared layouts may place replicas on the failed devices;
        // drop them so every layer re-plans onto the survivors.
        for state in &mut self.layers {
            state.next_layout = None;
            state.next_belief = None;
            state.next_from_replay = false;
            state.last_layout = None;
            state.last_belief = None;
        }
        self.ctx.set_fault_view(Some(view.clone()));
        Ok(true)
    }

    fn set_planner_available(&mut self, available: bool) {
        self.planner_available = available;
    }

    fn snapshot(&self) -> serde::Value {
        LaerCheckpoint {
            layers: self.layers.clone(),
        }
        .serialize_value()
    }

    fn restore(&mut self, snapshot: &serde::Value) -> Result<(), SystemError> {
        let ckpt = LaerCheckpoint::deserialize_value(snapshot)
            .map_err(|e| SystemError::Restore(e.to_string()))?;
        self.layers = ckpt.layers;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsdp_ep::FsdpEpSystem;
    use laer_cluster::Topology;
    use laer_model::{GpuSpec, ModelPreset};
    use laer_routing::{RoutingGenerator, RoutingGeneratorConfig};

    fn ctx() -> SystemContext {
        SystemContext::new(
            Topology::paper_cluster(),
            ModelPreset::Mixtral8x7bE8k2.config(),
            GpuSpec::a100(),
            16 * 1024,
            8192,
        )
    }

    /// The core end-to-end claim in miniature: LAER's per-layer straggler
    /// compute is closer to ideal than the static EP baseline's.
    #[test]
    fn balances_better_than_fsdp_ep() {
        let mut laer = LaerSystem::new(ctx());
        let mut fsdp = FsdpEpSystem::new(ctx());
        let mut gen =
            RoutingGenerator::new(RoutingGeneratorConfig::new(32, 8, 32 * 1024).with_seed(9));
        let mut laer_worse = 0;
        for it in 0..5 {
            let demand = gen.next_iteration();
            let pl = laer.plan_layer(0, it, &demand);
            let pf = fsdp.plan_layer(0, it, &demand);
            assert!(pl.routing.validate(&demand, &pl.layout).is_ok());
            if pl.max_token_ratio() > pf.max_token_ratio() {
                laer_worse += 1;
            }
        }
        assert_eq!(laer_worse, 0, "LAER should never balance worse");
    }

    /// Async (stale) planning costs only a small balance penalty over
    /// the oracle — the property that makes the Fig. 7 CPU offload
    /// viable (routing distributions are highly autocorrelated).
    #[test]
    fn async_planning_close_to_oracle() {
        let mut async_sys = LaerSystem::new(ctx());
        let mut oracle_sys = LaerSystem::new(ctx()).with_mode(PlanningMode::Oracle);
        assert_eq!(async_sys.mode(), PlanningMode::Async);
        let mut gen =
            RoutingGenerator::new(RoutingGeneratorConfig::new(32, 8, 32 * 1024).with_seed(31));
        let mut r_async = 0.0;
        let mut r_oracle = 0.0;
        for it in 0..15 {
            let demand = gen.next_iteration();
            let pa = async_sys.plan_layer(0, it, &demand);
            let po = oracle_sys.plan_layer(0, it, &demand);
            assert!(pa.routing.validate(&demand, &pa.layout).is_ok());
            r_async += pa.max_token_ratio();
            r_oracle += po.max_token_ratio();
        }
        assert!(
            r_async <= r_oracle * 1.15,
            "staleness penalty too large: async {r_async:.2} vs oracle {r_oracle:.2}"
        );
    }

    /// Device failure: after `handle_device_failures` every planned
    /// layout lives on the survivors and routes no token to the dead
    /// device.
    #[test]
    fn replans_onto_survivors_after_failure() {
        use laer_cluster::{DegradedView, DeviceId};
        let mut laer = LaerSystem::new(ctx());
        let mut gen =
            RoutingGenerator::new(RoutingGeneratorConfig::new(32, 8, 32 * 1024).with_seed(12));
        for it in 0..3 {
            let _ = laer.plan_layer(0, it, &gen.next_iteration());
        }
        let mut view = DegradedView::new(Topology::paper_cluster());
        let dead = DeviceId::new(13);
        view.fail_device(dead);
        assert!(laer.handle_device_failures(&view).unwrap());
        for it in 3..6 {
            let mut demand = gen.next_iteration();
            for j in 0..8 {
                demand.set(dead, laer_cluster::ExpertId::new(j), 0);
            }
            let plan = laer.plan_layer(0, it, &demand);
            assert_eq!(plan.layout.device_slots_used(dead), 0, "iter {it}");
            for &(_, _, dst, _) in plan.routing.entries() {
                assert_ne!(dst, dead, "token routed to dead device");
            }
        }
    }

    /// An unrecoverable cluster (too few survivors to host every
    /// expert) aborts with a typed error instead of panicking.
    #[test]
    fn unrecoverable_failure_is_typed() {
        use laer_cluster::{DegradedView, DeviceId};
        use laer_planner::PlanError;
        let topo = Topology::single_node(4).unwrap();
        let small = SystemContext::new(
            topo.clone(),
            ModelPreset::Mixtral8x7bE8k2.config(),
            GpuSpec::a100(),
            1024,
            1024,
        );
        let mut laer = LaerSystem::new(small);
        let mut view = DegradedView::new(topo);
        view.fail_device(DeviceId::new(0));
        assert!(matches!(
            laer.handle_device_failures(&view),
            Err(crate::SystemError::Plan(
                PlanError::InsufficientCapacity { .. }
            ))
        ));
    }

    /// Planner outage: the system keeps executing the previous layout
    /// (graceful staleness) and resumes planning when the outage ends.
    #[test]
    fn planner_outage_reuses_previous_layout() {
        let mut laer = LaerSystem::new(ctx());
        let mut gen =
            RoutingGenerator::new(RoutingGeneratorConfig::new(32, 8, 32 * 1024).with_seed(14));
        let warm = laer.plan_layer(0, 0, &gen.next_iteration());
        laer.set_planner_available(false);
        // First outage iteration may still consume the prepared layout;
        // afterwards the executed layout must freeze.
        let a = laer.plan_layer(0, 1, &gen.next_iteration());
        let b = laer.plan_layer(0, 2, &gen.next_iteration());
        let c = laer.plan_layer(0, 3, &gen.next_iteration());
        assert_eq!(b.layout, a.layout, "layout must freeze during outage");
        assert_eq!(c.layout, b.layout, "layout must freeze during outage");
        let _ = warm;
        laer.set_planner_available(true);
        let mut changed = false;
        for it in 4..10 {
            if laer.plan_layer(0, it, &gen.next_iteration()).layout != c.layout {
                changed = true;
                break;
            }
        }
        assert!(changed, "planning must resume after the outage");
    }

    /// Snapshot/restore captures the full mutable state: a restored
    /// system continues bit-identically to the original.
    #[test]
    fn snapshot_restore_is_bit_identical() {
        let mut a = LaerSystem::new(ctx());
        let mut gen =
            RoutingGenerator::new(RoutingGeneratorConfig::new(32, 8, 32 * 1024).with_seed(15));
        let mut demands = Vec::new();
        for it in 0..4 {
            let d = gen.next_iteration();
            let _ = a.plan_layer(0, it, &d);
            demands.push(d);
        }
        let snap = a.snapshot();
        let mut b = LaerSystem::new(ctx());
        b.restore(&snap).unwrap();
        for it in 4..8 {
            let d = gen.next_iteration();
            let pa = a.plan_layer(0, it, &d);
            let pb = b.plan_layer(0, it, &d);
            assert_eq!(pa.layout, pb.layout, "iter {it}");
            assert_eq!(pa.routing.entries(), pb.routing.entries(), "iter {it}");
        }
        // A malformed snapshot is a typed error.
        assert!(b.restore(&serde::Value::Bool(true)).is_err());
    }

    /// With the exact upcoming demands installed as a replay trace
    /// (noise 0), async planning becomes oracle planning: the cold
    /// start plans on the current demand (as oracle does) and every
    /// prepared layout is planned on the *actual* next demand.
    #[test]
    fn replay_foresight_matches_oracle() {
        let cfg = RoutingGeneratorConfig::new(32, 8, 32 * 1024).with_seed(77);
        let trace = laer_routing::RoutingTrace::record(cfg, 10);
        let mut replay = LaerSystem::new(ctx()).with_replay(vec![trace.clone()], 0.0, 0);
        let mut oracle = LaerSystem::new(ctx()).with_mode(PlanningMode::Oracle);
        for (it, demand) in trace.iter().enumerate() {
            let pr = replay.plan_layer(0, it as u64, demand);
            let po = oracle.plan_layer(0, it as u64, demand);
            assert_eq!(pr.layout, po.layout, "iter {it}");
            assert_eq!(pr.routing.entries(), po.routing.entries(), "iter {it}");
            if it > 0 {
                assert_eq!(pr.audit.trigger, "replay", "iter {it}");
            }
        }
    }

    /// Past the end of its trace the replay system keeps running on the
    /// EMA fallback instead of going cold, and re-installing a fresh
    /// trace restores foresight ("replay" audit trigger).
    #[test]
    fn replay_trace_end_falls_back_then_reinstall_restores() {
        let cfg = RoutingGeneratorConfig::new(32, 8, 32 * 1024).with_seed(78);
        let trace = laer_routing::RoutingTrace::record(cfg.clone(), 3);
        let mut laer = LaerSystem::new(ctx()).with_replay(vec![trace.clone()], 0.0, 0);
        let mut gen = RoutingGenerator::new(cfg);
        for it in 0..6u64 {
            let demand = gen.next_iteration();
            let plan = laer.plan_layer(0, it, &demand);
            assert!(plan.routing.validate(&demand, &plan.layout).is_ok());
            // Layouts planned past the trace end audit as "periodic"
            // (EMA fallback), not "replay".
            if it >= 4 {
                assert_eq!(plan.audit.trigger, "periodic", "iter {it}");
            }
        }
        let next_epoch = laer_routing::RoutingTrace::record(
            RoutingGeneratorConfig::new(32, 8, 32 * 1024).with_seed(79),
            3,
        );
        laer.install_replay(vec![next_epoch.clone()], 0.0, 1);
        let mut triggers = Vec::new();
        for (it, demand) in next_epoch.iter().enumerate() {
            let plan = laer.plan_layer(0, 6 + it as u64, demand);
            triggers.push(plan.audit.trigger.clone());
        }
        assert_eq!(triggers[1], "replay");
        assert_eq!(triggers[2], "replay");
    }

    #[test]
    fn layout_changes_across_iterations() {
        let mut laer = LaerSystem::new(ctx());
        let mut gen =
            RoutingGenerator::new(RoutingGeneratorConfig::new(32, 8, 32 * 1024).with_seed(10));
        let a = laer.plan_layer(0, 0, &gen.next_iteration());
        let mut changed = false;
        for it in 1..10 {
            let b = laer.plan_layer(0, it, &gen.next_iteration());
            if b.layout != a.layout {
                changed = true;
                break;
            }
        }
        assert!(changed, "per-iteration re-layout should adapt the layout");
    }
}
