//! LAER-MoE as a [`MoeSystem`]: the FSEP executor driven by the
//! load-balancing planner, re-laying out experts *every iteration*.
//!
//! Two planning modes exist:
//!
//! * [`PlanningMode::Async`] (default) — faithful to the Fig. 7
//!   workflow: the layout tuner runs asynchronously on the CPU using the
//!   routing information of *previous* iterations (smoothed by
//!   [`LoadPredictor`]), so the layout a layer executes is one iteration
//!   stale; the synchronous lite-routing dispatcher then routes the
//!   actual demand on that layout.
//! * [`PlanningMode::Oracle`] — plans with the current iteration's
//!   demand; an upper bound useful for measuring the staleness cost.

use crate::context::SystemContext;
use crate::system::{LayerPlan, MoeSystem};
use laer_fsep::ScheduleOptions;
use laer_planner::{
    lite_route, CostParams, ExpertLayout, LoadPredictor, Planner, PlannerConfig, ReplicaScheme,
};
use laer_routing::RoutingMatrix;
use serde::{Deserialize, Serialize};

/// How the layout tuner sees the routing demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlanningMode {
    /// Plan the next iteration's layout from the history of previous
    /// iterations (Fig. 7's CPU-side tuner).
    Async,
    /// Plan with the current iteration's demand (staleness-free upper
    /// bound).
    Oracle,
}

/// Per-layer asynchronous-tuner state.
#[derive(Debug, Clone)]
struct LayerState {
    predictor: LoadPredictor,
    next_layout: Option<ExpertLayout>,
}

/// The full LAER-MoE system (FSEP + planner).
#[derive(Debug, Clone)]
pub struct LaerSystem {
    ctx: SystemContext,
    planner: Planner,
    schedule: ScheduleOptions,
    mode: PlanningMode,
    layers: Vec<LayerState>,
}

impl LaerSystem {
    /// Creates LAER-MoE with the full Alg. 2 planner, all Fig. 5
    /// communication optimisations and the asynchronous (Fig. 7)
    /// planning mode.
    pub fn new(ctx: SystemContext) -> Self {
        Self::with_scheme(ctx, ReplicaScheme::Both, ScheduleOptions::optimized())
    }

    /// Creates an ablated variant (Fig. 12): a single replica scheme
    /// and/or disabled communication optimisations.
    pub fn with_scheme(
        ctx: SystemContext,
        scheme: ReplicaScheme,
        schedule: ScheduleOptions,
    ) -> Self {
        let cost = CostParams::from_model(ctx.model(), ctx.cost().gpu(), false);
        let planner = Planner::new(
            PlannerConfig::new(ctx.capacity())
                .with_scheme(scheme)
                .with_epsilon(4),
            cost,
            ctx.topology().clone(),
        );
        Self {
            ctx,
            planner,
            schedule,
            mode: PlanningMode::Async,
            layers: Vec::new(),
        }
    }

    /// Selects the planning mode (default [`PlanningMode::Async`]).
    pub fn with_mode(mut self, mode: PlanningMode) -> Self {
        self.mode = mode;
        self
    }

    /// The planning mode in use.
    pub fn mode(&self) -> PlanningMode {
        self.mode
    }

    /// The planner in use.
    pub fn planner(&self) -> &Planner {
        &self.planner
    }

    fn layer_state(&mut self, layer: usize) -> &mut LayerState {
        while self.layers.len() <= layer {
            self.layers.push(LayerState {
                predictor: LoadPredictor::default_ema(),
                next_layout: None,
            });
        }
        &mut self.layers[layer]
    }

    /// The layout to execute for this iteration under async planning:
    /// the layout the CPU tuner prepared from history, or (cold start) a
    /// plan from the current demand.
    fn async_layout(&mut self, layer: usize, demand: &RoutingMatrix) -> ExpertLayout {
        if let Some(layout) = self.layer_state(layer).next_layout.take() {
            return layout;
        }
        self.planner.plan(demand).layout
    }
}

impl MoeSystem for LaerSystem {
    fn name(&self) -> &'static str {
        "laer-moe"
    }

    fn schedule_options(&self) -> ScheduleOptions {
        self.schedule
    }

    fn plan_layer(&mut self, layer: usize, _iteration: u64, demand: &RoutingMatrix) -> LayerPlan {
        let (layout, routing) = match self.mode {
            PlanningMode::Oracle => {
                let plan = self.planner.plan(demand);
                (plan.layout, plan.routing)
            }
            PlanningMode::Async => {
                // Execute the layout prepared from history; the GPU-side
                // dispatcher routes the actual demand on it (Alg. 3).
                let layout = self.async_layout(layer, demand);
                let routing = lite_route(self.ctx.topology(), demand, &layout);
                // CPU side: fold this iteration's routing info into the
                // history and prepare the next iteration's layout.
                let state = self.layer_state(layer);
                state.predictor.observe(demand);
                let predicted = state
                    .predictor
                    .predict()
                    .expect("predictor observed this iteration");
                let next = self.planner.plan(&predicted).layout;
                self.layer_state(layer).next_layout = Some(next);
                (layout, routing)
            }
        };
        let timings = self.ctx.layer_timings(
            &routing,
            0.0,
            self.ctx.fsep_prefetch_time(),
            self.ctx.fsep_grad_sync_time(),
        );
        LayerPlan {
            layout,
            routing,
            timings,
        }
    }

    fn context(&self) -> &SystemContext {
        &self.ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsdp_ep::FsdpEpSystem;
    use laer_cluster::Topology;
    use laer_model::{GpuSpec, ModelPreset};
    use laer_routing::{RoutingGenerator, RoutingGeneratorConfig};

    fn ctx() -> SystemContext {
        SystemContext::new(
            Topology::paper_cluster(),
            ModelPreset::Mixtral8x7bE8k2.config(),
            GpuSpec::a100(),
            16 * 1024,
            8192,
        )
    }

    /// The core end-to-end claim in miniature: LAER's per-layer straggler
    /// compute is closer to ideal than the static EP baseline's.
    #[test]
    fn balances_better_than_fsdp_ep() {
        let mut laer = LaerSystem::new(ctx());
        let mut fsdp = FsdpEpSystem::new(ctx());
        let mut gen =
            RoutingGenerator::new(RoutingGeneratorConfig::new(32, 8, 32 * 1024).with_seed(9));
        let mut laer_worse = 0;
        for it in 0..5 {
            let demand = gen.next_iteration();
            let pl = laer.plan_layer(0, it, &demand);
            let pf = fsdp.plan_layer(0, it, &demand);
            assert!(pl.routing.validate(&demand, &pl.layout).is_ok());
            if pl.max_token_ratio() > pf.max_token_ratio() {
                laer_worse += 1;
            }
        }
        assert_eq!(laer_worse, 0, "LAER should never balance worse");
    }

    /// Async (stale) planning costs only a small balance penalty over
    /// the oracle — the property that makes the Fig. 7 CPU offload
    /// viable (routing distributions are highly autocorrelated).
    #[test]
    fn async_planning_close_to_oracle() {
        let mut async_sys = LaerSystem::new(ctx());
        let mut oracle_sys = LaerSystem::new(ctx()).with_mode(PlanningMode::Oracle);
        assert_eq!(async_sys.mode(), PlanningMode::Async);
        let mut gen =
            RoutingGenerator::new(RoutingGeneratorConfig::new(32, 8, 32 * 1024).with_seed(31));
        let mut r_async = 0.0;
        let mut r_oracle = 0.0;
        for it in 0..15 {
            let demand = gen.next_iteration();
            let pa = async_sys.plan_layer(0, it, &demand);
            let po = oracle_sys.plan_layer(0, it, &demand);
            assert!(pa.routing.validate(&demand, &pa.layout).is_ok());
            r_async += pa.max_token_ratio();
            r_oracle += po.max_token_ratio();
        }
        assert!(
            r_async <= r_oracle * 1.15,
            "staleness penalty too large: async {r_async:.2} vs oracle {r_oracle:.2}"
        );
    }

    #[test]
    fn layout_changes_across_iterations() {
        let mut laer = LaerSystem::new(ctx());
        let mut gen =
            RoutingGenerator::new(RoutingGeneratorConfig::new(32, 8, 32 * 1024).with_seed(10));
        let a = laer.plan_layer(0, 0, &gen.next_iteration());
        let mut changed = false;
        for it in 1..10 {
            let b = laer.plan_layer(0, it, &gen.next_iteration());
            if b.layout != a.layout {
                changed = true;
                break;
            }
        }
        assert!(changed, "per-iteration re-layout should adapt the layout");
    }
}
