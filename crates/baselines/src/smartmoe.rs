//! SmartMoE-style baseline: expert *relocation only* (no replication),
//! refreshed at a low frequency (Sec. 1: "SmartMoE regulates relocation
//! frequency to be low (e.g., hundreds of iterations)").

use crate::context::SystemContext;
use crate::system::{LayerPlan, MoeSystem};
use laer_fsep::ScheduleOptions;
use laer_planner::{expert_relocation, lite_route, ExpertLayout};
use laer_routing::RoutingMatrix;

/// SmartMoE: periodic relocation with even replica counts.
#[derive(Debug, Clone)]
pub struct SmartMoeSystem {
    ctx: SystemContext,
    period: u64,
    /// Per-layer cached layout and accumulated loads since last refresh.
    state: Vec<Option<(ExpertLayout, Vec<u64>)>>,
}

impl SmartMoeSystem {
    /// Creates the system with a relocation period (iterations between
    /// layout refreshes; the paper cites hundreds — tests use smaller
    /// values).
    pub fn new(ctx: SystemContext, layers: usize, period: u64) -> Self {
        assert!(period >= 1, "period must be at least 1");
        Self {
            ctx,
            period,
            state: vec![None; layers],
        }
    }

    /// The relocation period.
    pub fn period(&self) -> u64 {
        self.period
    }

    fn even_rep(&self, experts: usize) -> Vec<usize> {
        let total = self.ctx.topology().num_devices() * self.ctx.capacity();
        // Relocation-only: every expert keeps the same replica count.
        vec![total / experts; experts]
    }
}

impl MoeSystem for SmartMoeSystem {
    fn name(&self) -> &'static str {
        "smartmoe"
    }

    fn schedule_options(&self) -> ScheduleOptions {
        ScheduleOptions::optimized()
    }

    fn plan_layer(&mut self, layer: usize, iteration: u64, demand: &RoutingMatrix) -> LayerPlan {
        assert!(layer < self.state.len(), "layer index out of range");
        let loads = demand.expert_loads();
        let refresh = iteration.is_multiple_of(self.period) || self.state[layer].is_none();
        let layout = if refresh {
            // Refresh from the historical average (or current demand on
            // cold start).
            let hist = self.state[layer]
                .as_ref()
                .map(|(_, acc)| acc.clone())
                .unwrap_or_else(|| loads.clone());
            let rep = self.even_rep(loads.len());
            let layout = expert_relocation(&rep, &hist, self.ctx.topology(), self.ctx.capacity());
            self.state[layer] = Some((layout.clone(), loads.clone()));
            layout
        } else {
            let (layout, acc) = self.state[layer]
                .as_mut()
                .unwrap_or_else(|| unreachable!("checked by refresh"));
            for (a, l) in acc.iter_mut().zip(&loads) {
                *a += l;
            }
            layout.clone()
        };
        let routing = lite_route(self.ctx.topology(), demand, &layout);
        let timings = self.ctx.layer_timings(
            &routing,
            0.0,
            self.ctx.fsep_prefetch_time(),
            self.ctx.fsep_grad_sync_time(),
        );
        let trigger = if refresh { "refresh" } else { "hold" };
        let audit = crate::system::audit_belief(&self.ctx, trigger, &routing);
        LayerPlan {
            layout,
            routing,
            timings,
            audit,
        }
    }

    fn context(&self) -> &SystemContext {
        &self.ctx
    }

    fn context_mut(&mut self) -> &mut SystemContext {
        &mut self.ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laer::LaerSystem;
    use laer_cluster::Topology;
    use laer_model::{GpuSpec, ModelPreset};
    use laer_routing::{RoutingGenerator, RoutingGeneratorConfig};

    fn ctx() -> SystemContext {
        SystemContext::new(
            Topology::paper_cluster(),
            ModelPreset::Mixtral8x7bE8k2.config(),
            GpuSpec::a100(),
            16 * 1024,
            8192,
        )
    }

    #[test]
    fn layout_is_stale_between_refreshes() {
        let mut smart = SmartMoeSystem::new(ctx(), 1, 5);
        let mut gen =
            RoutingGenerator::new(RoutingGeneratorConfig::new(32, 8, 32 * 1024).with_seed(13));
        let mut layouts = Vec::new();
        for it in 0..5 {
            let demand = gen.next_iteration();
            layouts.push(smart.plan_layer(0, it, &demand).layout);
        }
        for w in layouts.windows(2) {
            assert_eq!(w[0], w[1], "layout must not change between refreshes");
        }
    }

    #[test]
    fn replica_counts_stay_even() {
        let mut smart = SmartMoeSystem::new(ctx(), 1, 3);
        let demand =
            RoutingGenerator::new(RoutingGeneratorConfig::new(32, 8, 32 * 1024).with_seed(14))
                .next_iteration();
        let plan = smart.plan_layer(0, 0, &demand);
        assert!(plan.layout.replica_vector().iter().all(|&r| r == 8));
    }

    /// Per-iteration re-layout (LAER) beats periodic relocation-only.
    #[test]
    fn laer_beats_smartmoe_in_aggregate() {
        let mut smart = SmartMoeSystem::new(ctx(), 1, 50);
        let mut laer = LaerSystem::new(ctx());
        let mut gen =
            RoutingGenerator::new(RoutingGeneratorConfig::new(32, 8, 32 * 1024).with_seed(15));
        let mut s = 0.0;
        let mut l = 0.0;
        for it in 0..25 {
            let demand = gen.next_iteration();
            s += smart.plan_layer(0, it, &demand).max_token_ratio();
            l += laer.plan_layer(0, it, &demand).max_token_ratio();
        }
        assert!(l < s, "LAER {l:.2} vs SmartMoE {s:.2}");
    }
}
