//! FlexMoE's scheduler reproduced on top of FSEP, as the paper evaluates
//! it (Sec. 5.2: "we reproduce its scheduler and replace our expert
//! re-layout planner, comparing it in conjunction with FSEP").
//!
//! FlexMoE adjusts the *previous* layout incrementally: each iteration it
//! moves at most [`FlexMoeSystem::max_changes`] replicas toward the
//! load-proportional target, and only accepts a move when the predicted
//! gain exceeds an adjustment penalty — the behaviour the paper credits
//! for FlexMoE's weaker results: "FlexMoE considers the extra adjustment
//! cost and penalizes layout changes, thereby excluding potentially
//! optimal solutions", and on e16k4 "the larger expert space limits the
//! quality of its solutions".

use crate::context::SystemContext;
use crate::system::{LayerPlan, MoeSystem};
use laer_cluster::{DeviceId, ExpertId};
use laer_fsep::ScheduleOptions;
use laer_planner::{expert_relocation, lite_route, replica_allocation, ExpertLayout};
use laer_routing::RoutingMatrix;

/// FlexMoE-style incremental replica scheduler on FSEP.
#[derive(Debug, Clone)]
pub struct FlexMoeSystem {
    ctx: SystemContext,
    /// Per-layer scheduler state: current replica vector and the
    /// *incrementally maintained* placement (FlexMoE adjusts the
    /// previous layout rather than re-placing every replica).
    current: Vec<Option<(Vec<usize>, ExpertLayout)>>,
    max_changes: usize,
    /// Minimum relative load-gain required to accept a move (the
    /// adjustment penalty).
    gain_threshold: f64,
    /// Projected max/ideal imbalance below which the scheduler leaves
    /// the layout alone entirely (FlexMoE triggers adjustment only on
    /// significant imbalance, accumulating drift between reactions).
    trigger_threshold: f64,
}

impl FlexMoeSystem {
    /// Creates the scheduler with the defaults used in the experiments:
    /// at most 2 replica moves per iteration, 2 % gain threshold,
    /// adjustment triggered at 1.35× projected imbalance.
    pub fn new(ctx: SystemContext, layers: usize) -> Self {
        Self {
            ctx,
            current: vec![None; layers],
            max_changes: 2,
            gain_threshold: 0.02,
            trigger_threshold: 1.35,
        }
    }

    /// Maximum replica moves per iteration.
    pub fn max_changes(&self) -> usize {
        self.max_changes
    }

    /// Advances one layer's state at most `max_changes` replica moves
    /// toward the load-proportional target, adjusting the placement
    /// *in place*: the receiver's new replica lands on the device the
    /// donor's replica vacated, and every untouched replica stays where
    /// it was (the stale-placement behaviour the paper criticises:
    /// "FlexMoE, which continuously adjusts previous expert layouts, may
    /// suffer from suboptimal adjustments when load changes").
    fn adjust(&self, rep: &mut [usize], layout: &mut ExpertLayout, loads: &[u64]) {
        let n = self.ctx.topology().num_devices();
        let c = self.ctx.capacity();
        // Trigger check: leave a "good enough" layout alone.
        let projected = projected_device_loads(layout, loads);
        let ideal = loads.iter().sum::<u64>() as f64 / n as f64;
        let imbalance = projected.iter().copied().fold(0.0, f64::max) / ideal.max(1.0);
        if imbalance < self.trigger_threshold {
            return;
        }
        let target = replica_allocation(loads, n, c);
        for _ in 0..self.max_changes {
            let donor = (0..rep.len())
                .filter(|&j| rep[j] > target[j] && rep[j] >= 2)
                .max_by_key(|&j| rep[j] - target[j]);
            let receiver = (0..rep.len())
                .filter(|&j| rep[j] < target[j])
                .max_by_key(|&j| target[j] - rep[j]);
            let (Some(d), Some(r)) = (donor, receiver) else {
                break;
            };
            // Gain estimate: reduction of the receiver's per-replica
            // average load from one more replica.
            let before = loads[r] as f64 / rep[r] as f64;
            let after = loads[r] as f64 / (rep[r] + 1) as f64;
            let gain = (before - after) / before.max(1.0);
            if gain < self.gain_threshold {
                break;
            }
            // Swap in place: pick the donor replica whose slot best
            // suits the receiver — a node with few receiver replicas
            // (keeps lite routing's intra-node preference balanced),
            // then the most lightly-loaded device.
            let projected = projected_device_loads(layout, loads);
            let topo = self.ctx.topology();
            let recv_per_node = layout.node_replica_counts(topo, ExpertId::new(r));
            let host = layout
                .replica_devices(ExpertId::new(d))
                .into_iter()
                .min_by(|&(a, _), &(b, _)| {
                    let na = recv_per_node[topo.node_of(a).index()];
                    let nb = recv_per_node[topo.node_of(b).index()];
                    na.cmp(&nb)
                        .then(projected[a.index()].total_cmp(&projected[b.index()]))
                        .then(a.index().cmp(&b.index()))
                })
                .map(|(dev, _)| dev)
                .unwrap_or_else(|| unreachable!("donor has replicas"));
            remove_replica(layout, host, ExpertId::new(d));
            layout.add_replica(host, ExpertId::new(r));
            rep[d] -= 1;
            rep[r] += 1;
        }
    }
}

/// Per-device load estimate assuming each expert's demand splits evenly
/// over its replicas.
fn projected_device_loads(layout: &ExpertLayout, loads: &[u64]) -> Vec<f64> {
    let mut out = vec![0.0f64; layout.num_devices()];
    for (j, &load) in loads.iter().enumerate() {
        let replicas = layout.expert_replicas(ExpertId::new(j));
        if replicas == 0 {
            continue;
        }
        let per = load as f64 / replicas as f64;
        for (dev, count) in layout.replica_devices(ExpertId::new(j)) {
            out[dev.index()] += per * count as f64;
        }
    }
    out
}

/// Removes one replica of `expert` from `device` by rebuilding the row
/// (ExpertLayout has no removal API because the LAER planner never needs
/// one; FlexMoE's in-place adjustment does).
fn remove_replica(layout: &mut ExpertLayout, device: DeviceId, expert: ExpertId) {
    let n = layout.num_devices();
    let e = layout.num_experts();
    let c = layout.capacity();
    let mut rebuilt =
        ExpertLayout::empty(n, e, c).unwrap_or_else(|e| unreachable!("same shape: {e}"));
    let mut removed = false;
    for d in 0..n {
        let dev = DeviceId::new(d);
        for j in 0..e {
            let ex = ExpertId::new(j);
            let mut count = layout.replica_count(dev, ex);
            if dev == device && ex == expert && !removed && count > 0 {
                count -= 1;
                removed = true;
            }
            for _ in 0..count {
                rebuilt.add_replica(dev, ex);
            }
        }
    }
    assert!(removed, "no replica of {expert} on {device}");
    *layout = rebuilt;
}

impl MoeSystem for FlexMoeSystem {
    fn name(&self) -> &'static str {
        "flexmoe"
    }

    fn schedule_options(&self) -> ScheduleOptions {
        ScheduleOptions::optimized()
    }

    fn plan_layer(&mut self, layer: usize, _iteration: u64, demand: &RoutingMatrix) -> LayerPlan {
        assert!(layer < self.current.len(), "layer index out of range");
        let loads = demand.expert_loads();
        let n = self.ctx.topology().num_devices();
        let c = self.ctx.capacity();
        let (cold, (mut rep, mut layout)) = match self.current[layer].take() {
            Some(state) => (false, state),
            // Cold start: even allocation placed once (FlexMoE starts
            // unreplicated and grows replicas on demand).
            None => {
                let rep = vec![n * c / loads.len(); loads.len()];
                let layout = expert_relocation(&rep, &loads, self.ctx.topology(), c);
                (true, (rep, layout))
            }
        };
        let before = layout.clone();
        self.adjust(&mut rep, &mut layout, &loads);
        let trigger = if cold {
            "cold-start"
        } else if layout != before {
            "adjust"
        } else {
            "hold"
        };
        let routing = lite_route(self.ctx.topology(), demand, &layout);
        self.current[layer] = Some((rep, layout.clone()));
        let timings = self.ctx.layer_timings(
            &routing,
            0.0,
            self.ctx.fsep_prefetch_time(),
            self.ctx.fsep_grad_sync_time(),
        );
        let audit = crate::system::audit_belief(&self.ctx, trigger, &routing);
        LayerPlan {
            layout,
            routing,
            timings,
            audit,
        }
    }

    fn context(&self) -> &SystemContext {
        &self.ctx
    }

    fn context_mut(&mut self) -> &mut SystemContext {
        &mut self.ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laer::LaerSystem;
    use laer_cluster::Topology;
    use laer_model::{GpuSpec, ModelPreset};
    use laer_routing::{RoutingGenerator, RoutingGeneratorConfig};

    fn ctx(preset: ModelPreset) -> SystemContext {
        SystemContext::new(
            Topology::paper_cluster(),
            preset.config(),
            GpuSpec::a100(),
            16 * 1024,
            8192,
        )
    }

    #[test]
    fn plans_are_valid_and_stateful() {
        let mut flex = FlexMoeSystem::new(ctx(ModelPreset::Mixtral8x7bE8k2), 1);
        let mut gen =
            RoutingGenerator::new(RoutingGeneratorConfig::new(32, 8, 32 * 1024).with_seed(11));
        let mut reps = Vec::new();
        for it in 0..6 {
            let demand = gen.next_iteration();
            let plan = flex.plan_layer(0, it, &demand);
            assert!(plan.routing.validate(&demand, &plan.layout).is_ok());
            reps.push(plan.layout.replica_vector());
        }
        // The replica vector evolves gradually: consecutive vectors
        // differ by at most 2*max_changes slots.
        for w in reps.windows(2) {
            let moved: usize = w[0].iter().zip(&w[1]).map(|(&a, &b)| a.abs_diff(b)).sum();
            assert!(moved <= 2 * flex.max_changes(), "moved {moved}");
        }
    }

    /// Sec. 5.2/5.3: LAER's global per-iteration optimisation balances at
    /// least as well as FlexMoE's incremental adjustment, and strictly
    /// better in aggregate over a drifting trace.
    #[test]
    fn laer_balances_better_in_aggregate() {
        for preset in [ModelPreset::Mixtral8x7bE8k2, ModelPreset::Mixtral8x7bE16k4] {
            let e = preset.config().experts();
            let mut flex = FlexMoeSystem::new(ctx(preset), 1);
            let mut laer = LaerSystem::new(ctx(preset));
            let mut gen =
                RoutingGenerator::new(RoutingGeneratorConfig::new(32, e, 32 * 1024).with_seed(12));
            let mut flex_sum = 0.0;
            let mut laer_sum = 0.0;
            for it in 0..20 {
                let demand = gen.next_iteration();
                flex_sum += flex.plan_layer(0, it, &demand).max_token_ratio();
                laer_sum += laer.plan_layer(0, it, &demand).max_token_ratio();
            }
            assert!(
                laer_sum < flex_sum,
                "{preset:?}: LAER {laer_sum:.2} should beat FlexMoE {flex_sum:.2}"
            );
        }
    }
}
