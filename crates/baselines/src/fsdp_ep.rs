//! The FSDP+EP baseline of Sec. 5.1: fully sharded model state, classic
//! expert parallelism for MoE layers, *with* the paper's communication
//! optimisations folded in ("thereby isolating and highlighting the
//! efficacy of our approach in addressing load imbalance").

use crate::context::SystemContext;
use crate::system::{LayerPlan, MoeSystem};
use crate::vanilla::vanilla_routing;
use laer_fsep::ScheduleOptions;
use laer_routing::RoutingMatrix;

/// Per-layer host-side overhead of stock PyTorch-FSDP sharding:
/// `masked_select`-style token rearrangement, flat-parameter
/// bookkeeping and blocking H2D/D2H synchronisation. LAER-MoE
/// eliminates these with async transfers and Triton kernels (Sec. 4
/// "Host Bound Optimization"); the FSDP+EP baseline receives the
/// *communication* optimisations of Fig. 5 but keeps the stock host
/// path, so it carries this per-layer cost.
pub(crate) const HOST_BOUND_OVERHEAD: f64 = 6.0e-3;

/// FSDP+EP: the strongest static-layout baseline.
#[derive(Debug, Clone)]
pub struct FsdpEpSystem {
    ctx: SystemContext,
}

impl FsdpEpSystem {
    /// Creates the system.
    pub fn new(ctx: SystemContext) -> Self {
        Self { ctx }
    }
}

impl MoeSystem for FsdpEpSystem {
    fn name(&self) -> &'static str {
        "fsdp-ep"
    }

    fn schedule_options(&self) -> ScheduleOptions {
        ScheduleOptions::optimized()
    }

    fn plan_layer(&mut self, _layer: usize, _iteration: u64, demand: &RoutingMatrix) -> LayerPlan {
        let (layout, routing) = vanilla_routing(demand, self.ctx.capacity());
        let mut timings = self.ctx.layer_timings(
            &routing,
            0.0,
            self.ctx.fsdp_prefetch_time(),
            self.ctx.fsdp_grad_sync_time(),
        );
        timings.attention += HOST_BOUND_OVERHEAD;
        let audit = crate::system::audit_belief(&self.ctx, "static-layout", &routing);
        LayerPlan {
            layout,
            routing,
            timings,
            audit,
        }
    }

    fn context(&self) -> &SystemContext {
        &self.ctx
    }

    fn context_mut(&mut self) -> &mut SystemContext {
        &mut self.ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laer_cluster::Topology;
    use laer_model::{GpuSpec, ModelPreset};
    use laer_routing::{RoutingGenerator, RoutingGeneratorConfig};

    #[test]
    fn same_routing_as_vanilla_but_optimized_schedule() {
        let ctx = SystemContext::new(
            Topology::paper_cluster(),
            ModelPreset::Mixtral8x7bE8k2.config(),
            GpuSpec::a100(),
            16 * 1024,
            8192,
        );
        let mut sys = FsdpEpSystem::new(ctx);
        let demand =
            RoutingGenerator::new(RoutingGeneratorConfig::new(32, 8, 32 * 1024).with_seed(5))
                .next_iteration();
        let plan = sys.plan_layer(0, 0, &demand);
        assert!(plan.routing.validate(&demand, &plan.layout).is_ok());
        assert_eq!(sys.schedule_options(), ScheduleOptions::optimized());
        assert!(plan.timings.prefetch > 0.0);
    }
}
