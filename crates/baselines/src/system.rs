//! The [`MoeSystem`] trait and common plan types.

use crate::context::SystemContext;
use laer_cluster::DegradedView;
use laer_fsep::{LayerTimings, ScheduleOptions};
use laer_obs::PlanAudit;
use laer_planner::{ExpertLayout, PlanError, TokenRouting};
use laer_routing::RoutingMatrix;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A system's typed failure while reacting to a fault (device loss,
/// state restore). Planning itself stays infallible — systems degrade to
/// a previous layout instead — so this surfaces only unsatisfiable
/// situations the training loop must abort on.
#[derive(Debug, Clone, PartialEq)]
pub enum SystemError {
    /// The degraded cluster cannot host every expert at least once.
    Plan(PlanError),
    /// A checkpoint snapshot does not match this system's state shape.
    Restore(String),
}

impl fmt::Display for SystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemError::Plan(e) => write!(f, "degraded planning failed: {e}"),
            SystemError::Restore(msg) => write!(f, "state restore failed: {msg}"),
        }
    }
}

impl std::error::Error for SystemError {}

impl From<PlanError> for SystemError {
    fn from(e: PlanError) -> Self {
        SystemError::Plan(e)
    }
}

/// A system's decision for one MoE layer of one iteration.
#[derive(Debug, Clone)]
pub struct LayerPlan {
    /// Expert layout executed this iteration.
    pub layout: ExpertLayout,
    /// Token routing executed this iteration.
    pub routing: TokenRouting,
    /// Operation durations handed to the simulator.
    pub timings: LayerTimings,
    /// The decision's belief for the audit trail: why the system
    /// (re-)planned and what Eq. 1 cost it expected. Systems with their
    /// own planner report the belief formed at planning time (possibly
    /// on stale demand); systems without one report the cost model's
    /// prediction for the layout they executed
    /// ([`audit_belief`]).
    pub audit: PlanAudit,
}

/// Prices `routing` with the context's Eq. 1 model into a [`PlanAudit`]
/// belief — the default audit for systems that carry no planner-side
/// prediction of their own.
pub fn audit_belief(ctx: &SystemContext, trigger: &str, routing: &TokenRouting) -> PlanAudit {
    let cost = ctx.eq1_cost(routing);
    PlanAudit::new(
        trigger,
        cost.comm,
        cost.comp,
        routing.device_compute_loads(),
    )
}

/// The device Eq. 1 names as one iteration's bottleneck: argmax of the
/// per-device predicted loads accumulated element-wise across the
/// iteration's layers (ties break to the lowest device). `None` when no
/// layer reported a load — the agreement metric of the diagnosis layer
/// is undefined then.
pub fn predicted_bottleneck_device(per_layer_loads: &[Vec<u64>]) -> Option<usize> {
    let mut totals: Vec<u64> = Vec::new();
    for loads in per_layer_loads {
        if totals.len() < loads.len() {
            totals.resize(loads.len(), 0);
        }
        for (t, &l) in totals.iter_mut().zip(loads) {
            *t += l;
        }
    }
    totals
        .iter()
        .enumerate()
        .max_by(|(i, a), (j, b)| a.cmp(b).then(j.cmp(i)))
        .filter(|&(_, &max)| max > 0)
        .map(|(d, _)| d)
}

impl LayerPlan {
    /// Maximum token-assignment count over devices divided by the ideal
    /// balanced count — the metric of Fig. 10(b).
    pub fn max_token_ratio(&self) -> f64 {
        let loads = self.routing.device_compute_loads();
        let max = loads.iter().copied().max().unwrap_or(0) as f64;
        let total: u64 = loads.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let ideal = total as f64 / loads.len() as f64;
        max / ideal
    }
}

/// A distributed MoE training system: given each layer's routing demand,
/// decides layout, routing and costs.
pub trait MoeSystem {
    /// Human-readable system name (used in experiment output).
    fn name(&self) -> &'static str;

    /// Stream-scheduling options the executor runs under.
    fn schedule_options(&self) -> ScheduleOptions;

    /// Plans one MoE layer. `layer` indexes the transformer layer (each
    /// layer has independent routing and, for stateful planners,
    /// independent state); `iteration` is the global step.
    fn plan_layer(&mut self, layer: usize, iteration: u64, demand: &RoutingMatrix) -> LayerPlan;

    /// The shared cost context.
    fn context(&self) -> &SystemContext;

    /// Mutable access to the cost context, so a fault harness can price
    /// the current iteration against a degraded network
    /// ([`SystemContext::set_fault_view`]).
    fn context_mut(&mut self) -> &mut SystemContext;

    /// Reacts to device failures described by `view`.
    ///
    /// Returns `Ok(true)` if the system re-planned onto the survivors
    /// and can continue elastically, `Ok(false)` if it has a static
    /// layout and must restart from a checkpoint (the default — classic
    /// EP groups cannot be re-formed on an irregular survivor set).
    ///
    /// # Errors
    ///
    /// [`SystemError::Plan`] when even an elastic system cannot place
    /// every expert on the survivors.
    fn handle_device_failures(&mut self, view: &DegradedView) -> Result<bool, SystemError> {
        let _ = view;
        Ok(false)
    }

    /// Signals whether the asynchronous planner process is reachable
    /// (the `PlannerOutage` fault class). Systems without a planner
    /// ignore this; LAER falls back to its previous layout while the
    /// planner is down.
    fn set_planner_available(&mut self, available: bool) {
        let _ = available;
    }

    /// Serializes the system's mutable per-layer state for
    /// checkpointing. Stateless systems (the static baselines) return
    /// [`serde::Value::Null`]; stateful systems must override this
    /// together with [`MoeSystem::restore`] so a restored run continues
    /// bit-identically.
    fn snapshot(&self) -> serde::Value {
        serde::Value::Null
    }

    /// Restores state captured by [`MoeSystem::snapshot`].
    ///
    /// # Errors
    ///
    /// [`SystemError::Restore`] if the snapshot does not match this
    /// system's expected shape.
    fn restore(&mut self, snapshot: &serde::Value) -> Result<(), SystemError> {
        match snapshot {
            serde::Value::Null => Ok(()),
            other => Err(SystemError::Restore(format!(
                "stateless system given a `{}` snapshot",
                other.kind()
            ))),
        }
    }
}

/// Identifier for the systems compared in the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SystemKind {
    /// LAER-MoE (this paper).
    Laer,
    /// FlexMoE's scheduler running on FSEP (as evaluated in Sec. 5.2).
    Flex,
    /// FSDP + expert parallelism with the paper's comm optimisations.
    FsdpEp,
    /// Megatron with heterogeneous expert parallelism.
    Megatron,
    /// Vanilla expert parallelism without comm optimisations (Fig. 1b).
    VanillaEp,
    /// SmartMoE-style periodic relocation (related work).
    SmartMoe,
    /// FasterMoE-style hot-expert shadowing (related work).
    FasterMoe,
}

impl SystemKind {
    /// The four systems of the end-to-end comparison (Fig. 8).
    pub const FIG8: [SystemKind; 4] = [
        SystemKind::Laer,
        SystemKind::Flex,
        SystemKind::FsdpEp,
        SystemKind::Megatron,
    ];

    /// Artifact-appendix identifier (`LAER`, `FLEX`, `FSDP`,
    /// `megatron`, ...).
    pub fn id(self) -> &'static str {
        match self {
            SystemKind::Laer => "LAER",
            SystemKind::Flex => "FLEX",
            SystemKind::FsdpEp => "FSDP",
            SystemKind::Megatron => "megatron",
            SystemKind::VanillaEp => "vanillaEP",
            SystemKind::SmartMoe => "smartmoe",
            SystemKind::FasterMoe => "fastermoe",
        }
    }
}

impl fmt::Display for SystemKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

impl FromStr for SystemKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        [
            SystemKind::Laer,
            SystemKind::Flex,
            SystemKind::FsdpEp,
            SystemKind::Megatron,
            SystemKind::VanillaEp,
            SystemKind::SmartMoe,
            SystemKind::FasterMoe,
        ]
        .into_iter()
        .find(|k| k.id().eq_ignore_ascii_case(s))
        .ok_or_else(|| format!("unknown system `{s}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_roundtrip() {
        for k in SystemKind::FIG8 {
            assert_eq!(k.id().parse::<SystemKind>().unwrap(), k);
        }
        assert_eq!("laer".parse::<SystemKind>().unwrap(), SystemKind::Laer);
        assert!("bogus".parse::<SystemKind>().is_err());
    }

    #[test]
    fn predicted_bottleneck_accumulates_layers() {
        // Device 2 leads layer 0, device 1 leads layer 1; summed,
        // device 1 carries the most load.
        let layers = vec![vec![1, 4, 5, 0], vec![1, 9, 2, 0]];
        assert_eq!(predicted_bottleneck_device(&layers), Some(1));
        // Ties break to the lowest device.
        assert_eq!(predicted_bottleneck_device(&[vec![3, 3]]), Some(0));
        // Ragged layers extend the total vector.
        assert_eq!(predicted_bottleneck_device(&[vec![1], vec![0, 2]]), Some(1));
        assert_eq!(predicted_bottleneck_device(&[]), None);
        assert_eq!(predicted_bottleneck_device(&[vec![0, 0]]), None);
    }
}
