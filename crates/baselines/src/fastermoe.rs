//! FasterMoE-style baseline: "shadowing" — the hottest experts are
//! broadcast to *every* device each iteration, on top of the static EP
//! layout (Sec. 6: "FasterMoE broadcasts hot experts to all devices,
//! introducing extra expert communication").

use crate::context::SystemContext;
use crate::system::{LayerPlan, MoeSystem};
use laer_cluster::{DeviceId, ExpertId};
use laer_fsep::ScheduleOptions;
use laer_model::BF16_BYTES;
use laer_planner::{lite_route, ExpertLayout};
use laer_routing::RoutingMatrix;

/// FasterMoE with `shadows` hot experts replicated everywhere.
#[derive(Debug, Clone)]
pub struct FasterMoeSystem {
    ctx: SystemContext,
    shadows: usize,
}

impl FasterMoeSystem {
    /// Creates the system; `shadows` is the number of hottest experts
    /// broadcast per layer per iteration.
    ///
    /// # Panics
    ///
    /// Panics if `shadows` is zero.
    pub fn new(ctx: SystemContext, shadows: usize) -> Self {
        assert!(shadows >= 1, "at least one shadow expert");
        Self { ctx, shadows }
    }

    /// Number of shadowed experts.
    pub fn shadows(&self) -> usize {
        self.shadows
    }

    /// Per-layer broadcast time for the shadow parameters plus the
    /// gradient all-reduce they require afterwards.
    fn shadow_comm_time(&self) -> f64 {
        let n = self.ctx.topology().num_devices() as f64;
        let bytes = (self.shadows as u64 * self.ctx.model().expert_params() * BF16_BYTES) as f64;
        // Broadcast ≈ one full copy over the bottleneck, all-reduce ≈ 2x.
        3.0 * bytes * (n - 1.0) / n / self.ctx.effective_a2a_bw()
    }
}

impl MoeSystem for FasterMoeSystem {
    fn name(&self) -> &'static str {
        "fastermoe"
    }

    fn schedule_options(&self) -> ScheduleOptions {
        ScheduleOptions::optimized()
    }

    fn plan_layer(&mut self, _layer: usize, _iteration: u64, demand: &RoutingMatrix) -> LayerPlan {
        let n = demand.num_devices();
        let e = demand.num_experts();
        let c = self.ctx.capacity();
        let loads = demand.expert_loads();
        // Hottest `shadows` experts.
        let mut order: Vec<usize> = (0..e).collect();
        order.sort_by(|&a, &b| loads[b].cmp(&loads[a]).then(a.cmp(&b)));
        let hot: Vec<usize> = order.into_iter().take(self.shadows).collect();
        // Static classic-EP layout + shadows on every device. The
        // shadows are *extra* memory beyond C, which is exactly
        // FasterMoE's cost; model it with capacity C + shadows.
        let base = ExpertLayout::classic_ep(n, e, c)
            .unwrap_or_else(|e| unreachable!("classic EP layout: {e}"));
        let mut layout = ExpertLayout::empty(n, e, c + self.shadows)
            .unwrap_or_else(|e| unreachable!("shadow layout: {e}"));
        for d in 0..n {
            let dev = DeviceId::new(d);
            for j in 0..e {
                let ex = ExpertId::new(j);
                for _ in 0..base.replica_count(dev, ex) {
                    layout.add_replica(dev, ex);
                }
            }
            for &h in &hot {
                layout.add_replica(dev, ExpertId::new(h));
            }
        }
        let routing = lite_route(self.ctx.topology(), demand, &layout);
        let mut timings = self.ctx.layer_timings(
            &routing,
            0.0,
            self.ctx.fsdp_prefetch_time(),
            self.ctx.fsdp_grad_sync_time() + self.shadow_comm_time(),
        );
        // The broadcast happens before expert compute and is not
        // overlapped in FasterMoE's design: charge it to the prefetch.
        timings.prefetch += self.shadow_comm_time();
        let audit = crate::system::audit_belief(&self.ctx, "static-layout", &routing);
        LayerPlan {
            layout,
            routing,
            timings,
            audit,
        }
    }

    fn context(&self) -> &SystemContext {
        &self.ctx
    }

    fn context_mut(&mut self) -> &mut SystemContext {
        &mut self.ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laer_cluster::Topology;
    use laer_model::{GpuSpec, ModelPreset};
    use laer_routing::{RoutingGenerator, RoutingGeneratorConfig};

    fn ctx() -> SystemContext {
        SystemContext::new(
            Topology::paper_cluster(),
            ModelPreset::Mixtral8x7bE8k2.config(),
            GpuSpec::a100(),
            16 * 1024,
            8192,
        )
    }

    #[test]
    fn shadows_spread_hot_load() {
        let mut fast = FasterMoeSystem::new(ctx(), 1);
        let demand =
            RoutingGenerator::new(RoutingGeneratorConfig::new(32, 8, 32 * 1024).with_seed(16))
                .next_iteration();
        let plan = fast.plan_layer(0, 0, &demand);
        assert!(plan.routing.validate(&demand, &plan.layout).is_ok());
        // The hottest expert is on every device.
        let loads = demand.expert_loads();
        let hot = (0..8).max_by_key(|&j| loads[j]).unwrap();
        for d in 0..32 {
            assert!(
                plan.layout
                    .replica_count(laer_cluster::DeviceId::new(d), ExpertId::new(hot))
                    >= 1
            );
        }
        // Shadowing pays broadcast time.
        assert!(plan.timings.prefetch > FsdpTime::prefetch(&fast.ctx));
    }

    struct FsdpTime;
    impl FsdpTime {
        fn prefetch(ctx: &SystemContext) -> f64 {
            ctx.fsdp_prefetch_time()
        }
    }

    #[test]
    fn balances_better_than_no_shadowing() {
        let mut fast = FasterMoeSystem::new(ctx(), 2);
        let demand =
            RoutingGenerator::new(RoutingGeneratorConfig::new(32, 8, 32 * 1024).with_seed(17))
                .next_iteration();
        let (_, vanilla) = crate::vanilla::vanilla_routing(&demand, 2);
        let plan = fast.plan_layer(0, 0, &demand);
        let max_fast = plan.max_token_ratio();
        let loads = vanilla.device_compute_loads();
        let max_v = *loads.iter().max().unwrap() as f64
            / (loads.iter().sum::<u64>() as f64 / loads.len() as f64);
        assert!(
            max_fast < max_v,
            "shadowing {max_fast:.2} vs vanilla {max_v:.2}"
        );
    }
}
