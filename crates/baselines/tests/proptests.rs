//! Property-based tests over the evaluated systems: routing validity
//! and timing sanity must hold for every system on arbitrary demands.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use laer_baselines::{
    vanilla_routing, FlexMoeSystem, FsdpEpSystem, LaerSystem, MegatronSystem, MoeSystem,
    SystemContext, VanillaEpSystem,
};
use laer_cluster::Topology;
use laer_model::{GpuSpec, ModelPreset};
use laer_routing::RoutingMatrix;
use proptest::prelude::*;

fn demand_strategy() -> impl Strategy<Value = RoutingMatrix> {
    proptest::collection::vec(0u64..20_000, 32 * 8)
        .prop_map(|data| RoutingMatrix::from_rows(32, 8, data).expect("32x8"))
}

fn ctx() -> SystemContext {
    SystemContext::new(
        Topology::paper_cluster(),
        ModelPreset::Mixtral8x7bE8k2.config(),
        GpuSpec::a100(),
        16 * 1024,
        8192,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Vanilla EP routing conserves tokens and stays group-local for any
    /// demand matrix.
    #[test]
    fn vanilla_routing_invariants(demand in demand_strategy()) {
        let (layout, routing) = vanilla_routing(&demand, 2);
        prop_assert!(routing.validate(&demand, &layout).is_ok());
        for &(src, _, dst, _) in routing.entries() {
            prop_assert_eq!(src.index() / 4, dst.index() / 4);
        }
        let total: u64 = routing.device_compute_loads().iter().sum();
        prop_assert_eq!(total, demand.total());
    }

    /// Every system yields valid plans with finite, non-negative timing
    /// vectors for arbitrary demands.
    #[test]
    fn systems_yield_valid_plans(demand in demand_strategy(), iter in 0u64..4) {
        let mut systems: Vec<Box<dyn MoeSystem>> = vec![
            Box::new(LaerSystem::new(ctx())),
            Box::new(FlexMoeSystem::new(ctx(), 1)),
            Box::new(FsdpEpSystem::new(ctx())),
            Box::new(MegatronSystem::new(ctx())),
            Box::new(VanillaEpSystem::new(ctx())),
        ];
        for sys in &mut systems {
            let plan = sys.plan_layer(0, iter, &demand);
            prop_assert!(plan.routing.validate(&demand, &plan.layout).is_ok(), "{}", sys.name());
            let t = &plan.timings;
            prop_assert!(t.attention.is_finite() && t.attention >= 0.0);
            prop_assert!(t.prefetch.is_finite() && t.prefetch >= 0.0);
            prop_assert!(t.grad_sync.is_finite() && t.grad_sync >= 0.0);
            for v in t.dispatch.iter().chain(&t.expert_forward).chain(&t.combine) {
                prop_assert!(v.is_finite() && *v >= 0.0, "{}", sys.name());
            }
            // Compute time conserves total work.
            let loads: u64 = plan.routing.device_compute_loads().iter().sum();
            prop_assert_eq!(loads, demand.total(), "{}", sys.name());
        }
    }

    /// On *skewed* demand — the regime the planner targets — LAER's
    /// straggler load never exceeds the static EP baseline's. (On
    /// adversarial near-uniform demands the Eq. 2 objective may trade a
    /// little balance for communication, so no such guarantee exists
    /// there; the guaranteed objective-level property is covered by the
    /// planner crate's proptests.)
    #[test]
    fn laer_balances_skewed_demand_no_worse_than_static(
        base in proptest::collection::vec(0u64..5_000, 32 * 8),
        hot in 0usize..8,
        heat in 5u64..20,
    ) {
        // Plant a hot expert: multiply one column of the demand.
        let mut data = base;
        for d in 0..32 {
            data[d * 8 + hot] = (data[d * 8 + hot] + 1000) * heat;
        }
        let demand = RoutingMatrix::from_rows(32, 8, data).expect("32x8");
        let mut laer = LaerSystem::new(ctx());
        let mut fsdp = FsdpEpSystem::new(ctx());
        let pl = laer.plan_layer(0, 0, &demand);
        let pf = fsdp.plan_layer(0, 0, &demand);
        prop_assert!(
            pl.max_token_ratio() <= pf.max_token_ratio() * 1.05 + 0.05,
            "LAER {} vs static {}",
            pl.max_token_ratio(),
            pf.max_token_ratio()
        );
    }
}
