//! Property-based tests for critical-path extraction: on fault-free
//! random schedules the path covers the whole makespan (no residual),
//! every span's slack is non-negative, and the identity what-if replay
//! reproduces the simulated makespan.

#![allow(clippy::unwrap_used, clippy::expect_used)]
use laer_cluster::{DeviceId, Topology};
use laer_obs::{critical_path, what_if};
use laer_sim::{Engine, EngineOptions, SpanHandle, SpanLabel, StreamKind};
use proptest::prelude::*;

const DEVICES: usize = 4;

/// Builds a random but dependency-consistent schedule on a recording
/// engine: each op is either a plain span on a random `(device,
/// stream)` with up to two dependencies on earlier spans, or (every
/// time `collective` is set) a synchronising collective across all
/// devices.
fn random_schedule(ops: &[(usize, usize, f64, usize, usize)]) -> Engine {
    let topo = Topology::single_node(DEVICES).expect("non-empty");
    let mut engine = Engine::with_options(&topo, EngineOptions { record_deps: true });
    let devices: Vec<DeviceId> = topo.devices().collect();
    let labels = [
        SpanLabel::Attention,
        SpanLabel::ExpertCompute,
        SpanLabel::AllToAll,
        SpanLabel::Prefetch,
        SpanLabel::GradSync,
        SpanLabel::Other,
    ];
    let mut handles: Vec<SpanHandle> = Vec::new();
    for &(dev, stream, dur, dep_seed, collective) in ops {
        if collective % 5 == 0 {
            let durations: Vec<f64> = (0..DEVICES)
                .map(|d| dur * (1.0 + d as f64 * 0.25))
                .collect();
            let deps: Vec<Vec<SpanHandle>> = (0..DEVICES)
                .map(|d| {
                    handles
                        .get((dep_seed + d) % handles.len().max(1))
                        .copied()
                        .into_iter()
                        .collect()
                })
                .collect();
            handles.extend(engine.enqueue_collective(
                &devices,
                StreamKind::A2a,
                SpanLabel::AllToAll,
                &durations,
                &deps,
            ));
        } else {
            let mut deps: Vec<SpanHandle> = Vec::new();
            if !handles.is_empty() {
                deps.push(handles[dep_seed % handles.len()]);
                if dep_seed % 3 == 0 {
                    deps.push(handles[(dep_seed / 3) % handles.len()]);
                }
            }
            handles.push(engine.enqueue(
                DeviceId::new(dev % DEVICES),
                StreamKind::ALL[stream % StreamKind::COUNT],
                labels[(dev + stream + dep_seed) % labels.len()],
                dur,
                &deps,
            ));
        }
    }
    engine
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The blamed segments tile `[0, makespan]` exactly — a fault-free
    /// schedule has no frontier jumps, so nothing is residual — and the
    /// CPM pass never reports negative slack.
    #[test]
    fn critical_path_covers_the_makespan(
        ops in proptest::collection::vec(
            (0usize..DEVICES, 0usize..4, 0.01f64..5.0, 0usize..1000, 0usize..25),
            1..40,
        )
    ) {
        let engine = random_schedule(&ops);
        let report = critical_path(engine.timeline()).expect("recording engine");
        prop_assert!((report.attributed - report.makespan).abs() < 1e-9 * report.makespan.max(1.0));
        prop_assert!(report.residual < 1e-9 * report.makespan.max(1.0));
        for (i, &slack) in report.slack.iter().enumerate() {
            prop_assert!(slack >= 0.0, "span {} has negative slack {}", i, slack);
        }
        // Segments are contiguous and ordered.
        for w in report.segments.windows(2) {
            prop_assert!((w[0].end - w[1].start).abs() < 1e-12);
        }
        if let Some(first) = report.segments.first() {
            prop_assert!(first.start.abs() < 1e-12);
        }
        // Every blamed span sits on a zero-slack chain.
        for seg in &report.segments {
            prop_assert!(report.slack[seg.span] < 1e-9);
        }
    }

    /// Replaying the DAG with identity scaling reproduces the simulated
    /// makespan: the recorded edges and local work are sufficient to
    /// reconstruct the schedule.
    #[test]
    fn identity_replay_matches_simulation(
        ops in proptest::collection::vec(
            (0usize..DEVICES, 0usize..4, 0.01f64..5.0, 0usize..1000, 0usize..25),
            1..40,
        )
    ) {
        let engine = random_schedule(&ops);
        let makespan = engine.timeline().makespan();
        let replayed = what_if(engine.timeline(), |_| 1.0).expect("recording engine");
        prop_assert!((replayed - makespan).abs() < 1e-9 * makespan.max(1.0));
    }
}
