//! Critical-path extraction over the recorded span dependency DAG.
//!
//! An engine run with [`laer_sim::EngineOptions::record_deps`] leaves a
//! [`laer_sim::DepLog`] in its [`Timeline`]: finish-to-start edges per
//! span plus the membership and bottleneck of every synchronising
//! collective. This module turns that DAG into *blame*:
//!
//! * [`critical_path`] walks backwards from the terminal span, always
//!   crossing a collective through its bottleneck participant, and
//!   produces a [`CritPathReport`] — the path's segments, blame seconds
//!   per `label × device × stream`, and a CPM late-finish slack per
//!   span (0 on the critical path, positive off it);
//! * [`what_if`] replays the DAG forward with one label's *local work*
//!   rescaled and reports the predicted makespan without re-simulating —
//!   the paper's "would 2× A2A bandwidth help?" question answered from
//!   one recorded schedule;
//! * [`standard_what_ifs`] bundles the scenarios the `ext-diagnose`
//!   target reports (2× A2A bandwidth, 2× expert FLOPs, free relayout,
//!   free prefetch).
//!
//! Everything here is a pure function of the timeline; ties are broken
//! by span index, so reports are byte-identical across runs.

use laer_sim::{SpanLabel, StreamKind, Timeline};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Short stable name of a stream for reports (Fig. 5's S1..S4).
fn stream_name(stream: StreamKind) -> &'static str {
    match stream {
        StreamKind::Compute => "s1-compute",
        StreamKind::Prefetch => "s2-prefetch",
        StreamKind::A2a => "s3-a2a",
        StreamKind::GradSync => "s4-grad-sync",
    }
}

/// One interval of the critical path: span `span` was the reason the
/// makespan clock advanced over `[start, end]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CritSegment {
    /// Timeline index of the blamed span.
    pub span: usize,
    /// Segment start, seconds.
    pub start: f64,
    /// Segment end, seconds.
    pub end: f64,
}

impl CritSegment {
    /// Blamed seconds.
    pub fn seconds(&self) -> f64 {
        self.end - self.start
    }
}

/// Aggregated blame of one `label × device × stream` bucket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlameEntry {
    /// Span label, display form.
    pub label: String,
    /// Device index.
    pub device: usize,
    /// Stream name (`s1-compute` .. `s4-grad-sync`).
    pub stream: String,
    /// Critical-path seconds attributed to this bucket.
    pub seconds: f64,
}

/// The critical path of one recorded timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CritPathReport {
    /// Timeline makespan (annotation spans excluded).
    pub makespan: f64,
    /// Seconds of the makespan covered by blamed segments.
    pub attributed: f64,
    /// Makespan seconds no span accounts for (scheduling gaps, e.g.
    /// barrier jumps); `makespan - attributed`.
    pub residual: f64,
    /// Path segments in time order (earliest first).
    pub segments: Vec<CritSegment>,
    /// Blame per `label × device × stream`, sorted by descending
    /// seconds (ties by label, device, stream for determinism).
    pub blame: Vec<BlameEntry>,
    /// CPM late-finish slack per span (same indexing as
    /// [`Timeline::spans`]): how much later the span could finish
    /// without moving the makespan. 0 on the critical path.
    pub slack: Vec<f64>,
}

impl CritPathReport {
    /// The consecutive `(src, dst)` span pairs of the path, for the
    /// Chrome-trace flow-event export.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        self.segments
            .windows(2)
            .map(|w| (w[0].span, w[1].span))
            .collect()
    }

    /// The device carrying the most critical-path seconds — the
    /// *actual* bottleneck device, to compare against Eq. 1's
    /// prediction. Ties break to the lowest device index; `None` when
    /// nothing was blamed.
    pub fn critical_device(&self) -> Option<usize> {
        let mut per_device: BTreeMap<usize, f64> = BTreeMap::new();
        for b in &self.blame {
            *per_device.entry(b.device).or_insert(0.0) += b.seconds;
        }
        per_device
            .into_iter()
            .max_by(|(da, a), (db, b)| a.total_cmp(b).then(db.cmp(da)))
            .map(|(d, _)| d)
    }

    /// The `k` heaviest blame buckets.
    pub fn top_blame(&self, k: usize) -> &[BlameEntry] {
        &self.blame[..k.min(self.blame.len())]
    }
}

/// Extracts the critical path of `timeline`, or `None` when the engine
/// ran without dependency recording (or recorded nothing).
///
/// The walk starts at the terminal span (latest-ending non-annotation
/// span, ties to the lowest index) and repeatedly steps to the
/// predecessor whose finish released the current span: a recorded edge
/// ending exactly at the span's start (starts are computed as the max
/// of predecessor ends, so exact comparison is sound). A collective is
/// crossed through its bottleneck participant — the member whose local
/// `ready + work` set the group's completion — so waits are blamed on
/// the participant that caused them. Time the walk cannot attribute
/// (frontier jumps from barriers) is reported as `residual`.
pub fn critical_path(timeline: &Timeline) -> Option<CritPathReport> {
    let deps = timeline.dep_log()?;
    let spans = timeline.spans();
    if spans.is_empty() {
        return None;
    }
    let makespan = timeline.makespan();

    // Terminal span: latest non-annotation end, ties to lowest index.
    let terminal = spans
        .iter()
        .enumerate()
        .filter(|(_, s)| !s.label.is_annotation())
        .max_by(|(i, a), (j, b)| a.end.total_cmp(&b.end).then(j.cmp(i)))
        .map(|(i, _)| i)?;

    let mut visited = vec![false; spans.len()];
    let mut segments: Vec<CritSegment> = Vec::new();
    let mut cur = terminal;
    let mut t = spans[terminal].end;
    loop {
        // Cross collectives through their bottleneck participant: every
        // member ends at the group completion, but only the bottleneck's
        // local work set it.
        if let Some(g) = deps.group_of(cur) {
            let b = g.bottleneck_span();
            if b != cur && b < spans.len() && !visited[b] {
                cur = b;
                continue;
            }
        }
        visited[cur] = true;
        let seg_start = spans[cur].start.min(t);
        if t > seg_start {
            segments.push(CritSegment {
                span: cur,
                start: seg_start,
                end: t,
            });
        }
        t = spans[cur].start;
        if t <= 0.0 {
            break;
        }
        // The predecessor that released this span: a recorded edge
        // ending exactly at the start (edges are sorted ascending, so
        // the first hit is the lowest index) …
        let next = deps
            .edges_of(cur)
            .iter()
            .map(|&e| e as usize)
            .find(|&e| {
                e < spans.len()
                    && !visited[e]
                    && !spans[e].label.is_annotation()
                    && spans[e].end == t
            })
            // … falling back to any earlier span ending there (the
            // frontier source after a barrier raise is recorded, but a
            // redirected collective walk can land on a member whose
            // start no recorded edge explains).
            .or_else(|| {
                (0..cur)
                    .find(|&i| !visited[i] && !spans[i].label.is_annotation() && spans[i].end == t)
            });
        match next {
            Some(n) => cur = n,
            None => break,
        }
    }
    segments.reverse();

    let attributed: f64 = segments.iter().map(CritSegment::seconds).sum();
    let residual = (makespan - attributed).max(0.0);

    // Blame aggregation, sorted by descending seconds with a full
    // deterministic tie-break.
    let mut buckets: BTreeMap<(String, usize, &'static str), f64> = BTreeMap::new();
    for seg in &segments {
        let s = &spans[seg.span];
        *buckets
            .entry((s.label.to_string(), s.device.index(), stream_name(s.stream)))
            .or_insert(0.0) += seg.seconds();
    }
    let mut blame: Vec<BlameEntry> = buckets
        .into_iter()
        .map(|((label, device, stream), seconds)| BlameEntry {
            label,
            device,
            stream: stream.to_string(),
            seconds,
        })
        .collect();
    blame.sort_by(|a, b| {
        b.seconds
            .total_cmp(&a.seconds)
            .then_with(|| a.label.cmp(&b.label))
            .then_with(|| a.device.cmp(&b.device))
            .then_with(|| a.stream.cmp(&b.stream))
    });

    // CPM late-finish pass: lf[i] is the latest span i could finish
    // without delaying the makespan. Descending index order visits every
    // successor before its predecessors (edges always point backwards).
    let mut lf = vec![makespan; spans.len()];
    for i in (0..spans.len().min(deps.len())).rev() {
        if spans[i].label.is_annotation() {
            continue;
        }
        // Delaying a collective's bottleneck delays every member, so
        // the bottleneck inherits the tightest member deadline. Applied
        // at the group's highest index — before any member's own edges
        // are folded below.
        if let Some(g) = deps.group_of(i) {
            if i == (g.first + g.len) as usize - 1 {
                let members = g.first as usize..=i;
                let group_lf = members.clone().map(|m| lf[m]).fold(f64::INFINITY, f64::min);
                let b = g.bottleneck_span();
                lf[b] = lf[b].min(group_lf);
            }
        }
        let latest_start = lf[i] - spans[i].duration();
        for &p in deps.edges_of(i) {
            let p = p as usize;
            lf[p] = lf[p].min(latest_start);
        }
    }
    let slack: Vec<f64> = spans
        .iter()
        .zip(&lf)
        .map(|(s, &lf)| (lf - s.end).max(0.0))
        .collect();

    Some(CritPathReport {
        makespan,
        attributed,
        residual,
        segments,
        blame,
        slack,
    })
}

/// Replays the recorded DAG forward with every span's *local work*
/// multiplied by `scale(label)` and returns the predicted makespan —
/// no re-simulation. Returns `None` without a dependency log.
///
/// Each span becomes ready at the max end of its recorded predecessors
/// and finishes `scaled work` later; collective members all complete at
/// the group's slowest member. An identity `scale` reproduces the
/// simulated makespan up to barrier-induced frontier gaps, so compare
/// scenarios against the identity replay ([`standard_what_ifs`] does).
pub fn what_if<F: Fn(SpanLabel) -> f64>(timeline: &Timeline, scale: F) -> Option<f64> {
    let deps = timeline.dep_log()?;
    let spans = timeline.spans();
    let n = spans.len().min(deps.len());
    let mut end = vec![0.0_f64; n];
    let ready_of = |i: usize, end: &[f64]| -> f64 {
        deps.edges_of(i)
            .iter()
            .map(|&e| end[e as usize])
            .fold(0.0, f64::max)
    };
    let mut i = 0;
    while i < n {
        if let Some(g) = deps.group_of(i) {
            // Groups are contiguous, so the loop always enters at
            // `first`; process the whole collective atomically.
            let range = g.first as usize..((g.first + g.len) as usize).min(n);
            let mut group_end = 0.0_f64;
            for m in range.clone() {
                let work = deps.work_of(m).unwrap_or_else(|| spans[m].duration());
                let finish = ready_of(m, &end) + work * scale(spans[m].label);
                group_end = group_end.max(finish);
            }
            for m in range.clone() {
                end[m] = group_end;
            }
            i = range.end;
        } else {
            if !spans[i].label.is_annotation() {
                let work = deps.work_of(i).unwrap_or_else(|| spans[i].duration());
                end[i] = ready_of(i, &end) + work * scale(spans[i].label);
            }
            i += 1;
        }
    }
    Some(
        end.iter()
            .zip(spans)
            .filter(|(_, s)| !s.label.is_annotation())
            .map(|(&e, _)| e)
            .fold(0.0, f64::max),
    )
}

/// One what-if scenario's outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WhatIf {
    /// Scenario name.
    pub name: String,
    /// Predicted makespan under the scenario, seconds.
    pub makespan: f64,
    /// Seconds saved vs the identity replay (≥ 0 for speedups).
    pub saved: f64,
}

/// The `ext-diagnose` scenario bundle: 2× A2A bandwidth, 2× expert
/// FLOPs, free relayout, free prefetch — each as a [`WhatIf`] against
/// the identity replay of the same DAG. `None` without a dependency
/// log.
pub fn standard_what_ifs(timeline: &Timeline) -> Option<Vec<WhatIf>> {
    let baseline = what_if(timeline, |_| 1.0)?;
    let scenario = |name: &str, target: SpanLabel, factor: f64| -> Option<WhatIf> {
        let makespan = what_if(timeline, |l| if l == target { factor } else { 1.0 })?;
        Some(WhatIf {
            name: name.to_string(),
            makespan,
            saved: baseline - makespan,
        })
    };
    Some(vec![
        scenario("2x-a2a-bandwidth", SpanLabel::AllToAll, 0.5)?,
        scenario("2x-expert-flops", SpanLabel::ExpertCompute, 0.5)?,
        scenario("free-relayout", SpanLabel::Relayout, 0.0)?,
        scenario("free-prefetch", SpanLabel::Prefetch, 0.0)?,
    ])
}

/// One iteration's critical-path journal event: the blame headline and
/// the Eq.-1-vs-actual bottleneck agreement input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CritPathRecord {
    /// System under test.
    pub system: String,
    /// Global iteration index.
    pub iteration: u64,
    /// Iteration makespan, seconds.
    pub makespan: f64,
    /// Unattributed seconds.
    pub residual: f64,
    /// Device carrying the most critical-path seconds.
    pub critical_device: usize,
    /// Eq. 1's predicted bottleneck device (argmax predicted load).
    pub predicted_device: usize,
    /// Whether prediction and critical path name the same device.
    pub agree: bool,
    /// Heaviest blame buckets (top 3).
    pub top_blame: Vec<BlameEntry>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use laer_cluster::{DeviceId, Topology};
    use laer_sim::{Engine, EngineOptions, SpanHandle};

    fn recording_engine(n: usize) -> Engine {
        let topo = Topology::single_node(n).unwrap();
        Engine::with_options(&topo, EngineOptions { record_deps: true })
    }

    #[test]
    fn chain_blames_every_span() {
        let mut eng = recording_engine(1);
        let d = DeviceId::new(0);
        let a = eng.enqueue(d, StreamKind::Compute, SpanLabel::Attention, 1.0, &[]);
        let b = eng.enqueue(d, StreamKind::A2a, SpanLabel::AllToAll, 2.0, &[a]);
        eng.enqueue(d, StreamKind::Compute, SpanLabel::ExpertCompute, 3.0, &[b]);
        let report = critical_path(eng.timeline()).unwrap();
        assert_eq!(report.makespan, 6.0);
        assert!((report.attributed - 6.0).abs() < 1e-12);
        assert_eq!(report.residual, 0.0);
        assert_eq!(
            report.segments.iter().map(|s| s.span).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(report.edges(), vec![(0, 1), (1, 2)]);
        // Every span is on the path: zero slack throughout.
        assert!(report.slack.iter().all(|&s| s.abs() < 1e-12));
        assert_eq!(report.critical_device(), Some(0));
    }

    #[test]
    fn off_path_spans_carry_slack() {
        let mut eng = recording_engine(2);
        let d0 = DeviceId::new(0);
        let d1 = DeviceId::new(1);
        eng.enqueue(d0, StreamKind::Compute, SpanLabel::ExpertCompute, 5.0, &[]);
        // Device 1 finishes early and nothing depends on it.
        eng.enqueue(d1, StreamKind::Compute, SpanLabel::Attention, 1.0, &[]);
        let report = critical_path(eng.timeline()).unwrap();
        assert_eq!(report.makespan, 5.0);
        assert!(report.slack[0].abs() < 1e-12);
        assert!((report.slack[1] - 4.0).abs() < 1e-12);
        assert_eq!(report.critical_device(), Some(0));
        assert_eq!(report.blame.len(), 1);
        assert_eq!(report.blame[0].label, "expert-compute");
        assert_eq!(report.blame[0].stream, "s1-compute");
    }

    #[test]
    fn collective_blame_lands_on_the_bottleneck() {
        let mut eng = recording_engine(2);
        let d0 = DeviceId::new(0);
        let d1 = DeviceId::new(1);
        // Device 1's member takes 4× longer: it is the bottleneck, and
        // the path should cross the collective through it.
        let no_deps: [Vec<SpanHandle>; 2] = [Vec::new(), Vec::new()];
        eng.enqueue_collective(
            &[DeviceId::new(0), DeviceId::new(1)],
            StreamKind::A2a,
            SpanLabel::AllToAll,
            &[1.0, 4.0],
            &no_deps,
        );
        let h = eng.enqueue(d0, StreamKind::Compute, SpanLabel::ExpertCompute, 1.0, &[]);
        let _ = (d1, h);
        let report = critical_path(eng.timeline()).unwrap();
        assert_eq!(report.makespan, 4.0);
        let blamed: Vec<usize> = report.segments.iter().map(|s| s.span).collect();
        assert_eq!(blamed, vec![1], "path crosses the slow member only");
        assert_eq!(report.critical_device(), Some(1));
        // The fast member could finish 3s later without hurting.
        assert!(report.slack[1].abs() < 1e-12);
        assert!(report.slack[0] >= 0.0);
    }

    #[test]
    fn what_if_rescales_only_the_target_label() {
        let mut eng = recording_engine(1);
        let d = DeviceId::new(0);
        let a = eng.enqueue(d, StreamKind::Compute, SpanLabel::Attention, 1.0, &[]);
        eng.enqueue(d, StreamKind::A2a, SpanLabel::AllToAll, 2.0, &[a]);
        let identity = what_if(eng.timeline(), |_| 1.0).unwrap();
        assert!((identity - 3.0).abs() < 1e-12);
        let fast_a2a = what_if(eng.timeline(), |l| {
            if l == SpanLabel::AllToAll {
                0.5
            } else {
                1.0
            }
        })
        .unwrap();
        assert!((fast_a2a - 2.0).abs() < 1e-12);
        let what_ifs = standard_what_ifs(eng.timeline()).unwrap();
        assert_eq!(what_ifs.len(), 4);
        assert_eq!(what_ifs[0].name, "2x-a2a-bandwidth");
        assert!((what_ifs[0].saved - 1.0).abs() < 1e-12);
        // No prefetch in this schedule: freeing it saves nothing.
        assert_eq!(what_ifs[3].name, "free-prefetch");
        assert!(what_ifs[3].saved.abs() < 1e-12);
    }

    #[test]
    fn what_if_collective_tracks_slowest_member() {
        let mut eng = recording_engine(2);
        let no_deps: [Vec<SpanHandle>; 2] = [Vec::new(), Vec::new()];
        eng.enqueue_collective(
            &[DeviceId::new(0), DeviceId::new(1)],
            StreamKind::A2a,
            SpanLabel::AllToAll,
            &[1.0, 4.0],
            &no_deps,
        );
        // Halving A2A work halves the bottleneck member: 4 → 2.
        let fast = what_if(eng.timeline(), |l| {
            if l == SpanLabel::AllToAll {
                0.5
            } else {
                1.0
            }
        })
        .unwrap();
        assert!((fast - 2.0).abs() < 1e-12);
    }

    #[test]
    fn unrecorded_timeline_yields_none() {
        let topo = Topology::single_node(1).unwrap();
        let mut eng = Engine::new(&topo);
        eng.enqueue(
            DeviceId::new(0),
            StreamKind::Compute,
            SpanLabel::Attention,
            1.0,
            &[],
        );
        assert!(critical_path(eng.timeline()).is_none());
        assert!(what_if(eng.timeline(), |_| 1.0).is_none());
        assert!(standard_what_ifs(eng.timeline()).is_none());
    }
}
