//! Builders for Chrome-trace counter tracks (`ph:"C"` events).
//!
//! [`laer_sim::write_chrome_trace_with_counters`] renders these
//! alongside the span timeline, giving Perfetto stepped charts for
//! quantities with no span shape: admission-queue depth and per-stream
//! busy fraction.

use laer_cluster::DeviceId;
use laer_sim::{CounterTrack, StreamKind, Timeline};

/// Synthetic pid for cluster-wide counter tracks, clear of real device
/// indices.
pub const CLUSTER_PID: u32 = 1000;

fn stream_short(kind: StreamKind) -> &'static str {
    match kind {
        StreamKind::Compute => "S1 compute",
        StreamKind::Prefetch => "S2 prefetch",
        StreamKind::A2a => "S3 a2a",
        StreamKind::GradSync => "S4 grad-sync",
    }
}

/// Builds one utilisation counter track per stream kind: at each
/// `window`-second boundary, the mean busy fraction of that stream over
/// the preceding window, averaged across devices. Sampling windows make
/// the track piecewise-constant (what a `ph:"C"` track renders best)
/// while staying a pure function of the timeline.
///
/// # Panics
///
/// Panics if `window` is not a positive finite number or `n_devices`
/// is 0.
pub fn stream_utilization_tracks(
    timeline: &Timeline,
    n_devices: usize,
    window: f64,
) -> Vec<CounterTrack> {
    assert!(
        window > 0.0 && window.is_finite(),
        "window must be positive"
    );
    assert!(n_devices > 0, "need at least one device");
    let makespan = timeline.makespan();
    let windows = if makespan == 0.0 {
        0
    } else {
        (makespan / window).ceil() as usize
    };
    StreamKind::ALL
        .into_iter()
        .map(|kind| {
            // busy[w] accumulates busy seconds of `kind` across devices
            // clipped to window w.
            let mut busy = vec![0.0f64; windows];
            for span in timeline.spans() {
                if span.stream != kind
                    || span.label.is_annotation()
                    || span.device.index() >= n_devices
                {
                    continue;
                }
                let first = (span.start / window).floor() as usize;
                let last = ((span.end / window).ceil() as usize).min(windows);
                for (w, slot) in busy.iter_mut().enumerate().take(last).skip(first) {
                    let ws = w as f64 * window;
                    let we = ws + window;
                    let overlap = span.end.min(we) - span.start.max(ws);
                    if overlap > 0.0 {
                        *slot += overlap;
                    }
                }
            }
            let denom = window * n_devices as f64;
            let mut samples = vec![(0.0, 0.0)];
            for (w, b) in busy.iter().enumerate() {
                samples.push((w as f64 * window, b / denom));
            }
            // Close the track at the makespan so the last window shows.
            samples.push((makespan, 0.0));
            CounterTrack::new(format!("{} util", stream_short(kind)), CLUSTER_PID, samples)
        })
        .collect()
}

/// Builds the admission-queue depth counter track from per-step
/// `(virtual time, depth)` samples.
pub fn queue_depth_track(samples: &[(f64, usize)]) -> CounterTrack {
    CounterTrack::new(
        "queue depth",
        CLUSTER_PID,
        samples.iter().map(|&(t, d)| (t, d as f64)).collect(),
    )
}

/// Busy seconds of one device's stream (fault spans excluded) — small
/// helper for tests and journals that want absolute seconds rather than
/// the fraction [`Timeline::stream_utilization`] returns.
pub fn stream_busy_seconds(timeline: &Timeline, device: DeviceId, stream: StreamKind) -> f64 {
    timeline
        .spans()
        .iter()
        .filter(|s| s.device == device && s.stream == stream && !s.label.is_annotation())
        .map(|s| s.duration())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use laer_sim::{Span, SpanLabel};

    fn span(device: usize, stream: StreamKind, start: f64, end: f64) -> Span {
        Span {
            device: DeviceId::new(device),
            stream,
            label: match stream {
                StreamKind::Compute => SpanLabel::ExpertCompute,
                StreamKind::Prefetch => SpanLabel::Prefetch,
                StreamKind::A2a => SpanLabel::AllToAll,
                StreamKind::GradSync => SpanLabel::GradSync,
            },
            start,
            end,
        }
    }

    #[test]
    fn utilization_windows_average_over_devices() {
        let mut t = Timeline::new();
        // Device 0 computes the full [0, 2]; device 1 computes [0, 1].
        t.push(span(0, StreamKind::Compute, 0.0, 2.0));
        t.push(span(1, StreamKind::Compute, 0.0, 1.0));
        let tracks = stream_utilization_tracks(&t, 2, 1.0);
        assert_eq!(tracks.len(), 4);
        let s1 = &tracks[0];
        assert_eq!(s1.name, "S1 compute util");
        assert_eq!(s1.pid, CLUSTER_PID);
        // Samples: lead-in, window 0 (both busy → 1.0), window 1 (one
        // busy → 0.5), close-out at makespan.
        let vals: Vec<f64> = s1.samples.iter().map(|s| s.value).collect();
        assert_eq!(vals, vec![0.0, 1.0, 0.5, 0.0]);
        // Empty streams produce all-zero tracks of the same shape.
        let s4 = &tracks[3];
        assert!(s4.samples.iter().all(|s| s.value == 0.0));
    }

    #[test]
    fn utilization_of_empty_timeline() {
        let tracks = stream_utilization_tracks(&Timeline::new(), 4, 1e-3);
        for track in tracks {
            assert_eq!(track.samples.len(), 2, "lead-in and close-out only");
        }
    }

    #[test]
    fn queue_depth_samples_map_directly() {
        let track = queue_depth_track(&[(0.0, 0), (0.5, 3), (1.0, 1)]);
        assert_eq!(track.name, "queue depth");
        assert_eq!(track.samples.len(), 3);
        assert_eq!(track.samples[1].value, 3.0);
    }

    #[test]
    fn busy_seconds_filters_device_and_stream() {
        let mut t = Timeline::new();
        t.push(span(0, StreamKind::A2a, 0.0, 2.0));
        t.push(span(1, StreamKind::A2a, 0.0, 5.0));
        assert_eq!(
            stream_busy_seconds(&t, DeviceId::new(0), StreamKind::A2a),
            2.0
        );
        assert_eq!(
            stream_busy_seconds(&t, DeviceId::new(0), StreamKind::Compute),
            0.0
        );
    }
}
