//! The planner decision audit: what the planner *believed* when it
//! chose a layout, joined with what the simulator *actually* charged.
//!
//! Every (re-)layout decision produces a [`PlanAudit`]: the trigger
//! that caused it, the predicted Eq. 1 cost (`T = T_comm + T_comp`) and
//! the predicted per-device token loads. After the iteration executes,
//! the driver joins the belief with the simulated actuals of the same
//! quantities into an [`AuditRecord`]; [`AuditLog::summary`] then
//! reduces the records to a per-system prediction-error metric — the
//! number adaptive systems like SmartMoE/FlexMoE/LAER live or die on.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A layout decision's belief, captured at planning time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanAudit {
    /// Why the system (re-)planned: `"static-layout"`, `"cold-start"`,
    /// `"periodic"`, `"refresh"`, `"hold"`, `"adjust"`,
    /// `"outage-fallback"`, `"oracle"`, ... — free-form but stable per
    /// call site so journals can be grouped.
    pub trigger: String,
    /// Predicted `T_comm` of Eq. 2, seconds.
    pub predicted_comm: f64,
    /// Predicted `T_comp` of Eq. 2, seconds.
    pub predicted_comp: f64,
    /// Predicted per-device token loads the belief was formed on.
    pub predicted_loads: Vec<u64>,
}

impl PlanAudit {
    /// Creates a belief record.
    pub fn new(
        trigger: impl Into<String>,
        predicted_comm: f64,
        predicted_comp: f64,
        predicted_loads: Vec<u64>,
    ) -> Self {
        Self {
            trigger: trigger.into(),
            predicted_comm,
            predicted_comp,
            predicted_loads,
        }
    }

    /// Predicted `T = T_comm + T_comp`.
    pub fn predicted_total(&self) -> f64 {
        self.predicted_comm + self.predicted_comp
    }
}

/// One audited decision: the belief plus the simulated actuals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditRecord {
    /// System under test.
    pub system: String,
    /// Global iteration index.
    pub iteration: u64,
    /// MoE layer index.
    pub layer: usize,
    /// Trigger reason copied from the belief.
    pub trigger: String,
    /// Predicted `T_comm`, seconds.
    pub predicted_comm: f64,
    /// Predicted `T_comp`, seconds.
    pub predicted_comp: f64,
    /// Simulated `T_comm` actually charged for the layer's four
    /// All-to-All passes, seconds.
    pub actual_comm: f64,
    /// Simulated `T_comp` actually charged for the layer's expert
    /// compute (forward + backward), seconds.
    pub actual_comp: f64,
    /// Maximum actual per-device load over the ideal balanced load.
    pub actual_imbalance: f64,
}

impl AuditRecord {
    /// Predicted total seconds.
    pub fn predicted_total(&self) -> f64 {
        self.predicted_comm + self.predicted_comp
    }

    /// Simulated actual total seconds.
    pub fn actual_total(&self) -> f64 {
        self.actual_comm + self.actual_comp
    }

    /// Signed relative prediction error `(predicted − actual) / actual`
    /// (0 when both are 0).
    pub fn rel_error(&self) -> f64 {
        let actual = self.actual_total();
        if actual == 0.0 {
            return 0.0;
        }
        (self.predicted_total() - actual) / actual
    }
}

/// Prediction-error statistics of one system's audited decisions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditSummary {
    /// System the summary covers.
    pub system: String,
    /// Number of audited decisions.
    pub decisions: u64,
    /// Mean of `|rel_error|`.
    pub mean_abs_rel_error: f64,
    /// Mean of signed `rel_error` (the prediction bias: positive means
    /// the planner over-estimates cost).
    pub mean_rel_error: f64,
    /// Largest `|rel_error|` observed.
    pub worst_abs_rel_error: f64,
    /// Mean predicted total seconds.
    pub mean_predicted: f64,
    /// Mean simulated actual total seconds.
    pub mean_actual: f64,
}

/// An append-only log of audit records.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AuditLog {
    /// All records, in execution order.
    pub records: Vec<AuditRecord>,
}

impl AuditLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record.
    pub fn push(&mut self, record: AuditRecord) {
        self.records.push(record);
    }

    /// The distinct system names present, sorted.
    pub fn systems(&self) -> Vec<String> {
        let set: BTreeSet<&str> = self.records.iter().map(|r| r.system.as_str()).collect();
        set.into_iter().map(str::to_string).collect()
    }

    /// Reduces one system's records to its prediction-error statistics,
    /// or `None` if the system has no records.
    pub fn summary(&self, system: &str) -> Option<AuditSummary> {
        let records: Vec<&AuditRecord> =
            self.records.iter().filter(|r| r.system == system).collect();
        if records.is_empty() {
            return None;
        }
        let n = records.len() as f64;
        let mut abs = 0.0;
        let mut signed = 0.0;
        let mut worst = 0.0f64;
        let mut predicted = 0.0;
        let mut actual = 0.0;
        for r in &records {
            let e = r.rel_error();
            abs += e.abs();
            signed += e;
            worst = worst.max(e.abs());
            predicted += r.predicted_total();
            actual += r.actual_total();
        }
        Some(AuditSummary {
            system: system.to_string(),
            decisions: records.len() as u64,
            mean_abs_rel_error: abs / n,
            mean_rel_error: signed / n,
            worst_abs_rel_error: worst,
            mean_predicted: predicted / n,
            mean_actual: actual / n,
        })
    }

    /// Summaries for every system in the log, sorted by system name.
    pub fn summaries(&self) -> Vec<AuditSummary> {
        self.systems()
            .iter()
            .filter_map(|s| self.summary(s))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(system: &str, predicted: f64, actual: f64) -> AuditRecord {
        AuditRecord {
            system: system.into(),
            iteration: 0,
            layer: 0,
            trigger: "test".into(),
            predicted_comm: predicted / 2.0,
            predicted_comp: predicted / 2.0,
            actual_comm: actual / 2.0,
            actual_comp: actual / 2.0,
            actual_imbalance: 1.0,
        }
    }

    #[test]
    fn rel_error_is_signed() {
        assert!((record("s", 1.2, 1.0).rel_error() - 0.2).abs() < 1e-12);
        assert!((record("s", 0.8, 1.0).rel_error() + 0.2).abs() < 1e-12);
        assert_eq!(record("s", 0.0, 0.0).rel_error(), 0.0);
    }

    #[test]
    fn summary_aggregates_per_system() {
        let mut log = AuditLog::new();
        log.push(record("a", 1.1, 1.0));
        log.push(record("a", 0.9, 1.0));
        log.push(record("b", 2.0, 1.0));
        let a = log.summary("a").unwrap();
        assert_eq!(a.decisions, 2);
        assert!((a.mean_abs_rel_error - 0.1).abs() < 1e-9);
        assert!(a.mean_rel_error.abs() < 1e-9, "errors cancel");
        assert!((a.worst_abs_rel_error - 0.1).abs() < 1e-9);
        let b = log.summary("b").unwrap();
        assert!((b.mean_rel_error - 1.0).abs() < 1e-9);
        assert!(log.summary("c").is_none());
        assert_eq!(log.systems(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(log.summaries().len(), 2);
    }

    #[test]
    fn plan_audit_total() {
        let p = PlanAudit::new("periodic", 0.25, 0.75, vec![1, 2]);
        assert_eq!(p.predicted_total(), 1.0);
        assert_eq!(p.trigger, "periodic");
    }
}
