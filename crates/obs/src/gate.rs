//! The perf-regression gate: compare a run's headline numbers against a
//! committed snapshot (`BENCH_obs.json`) with a relative tolerance.
//!
//! The simulator is deterministic, so re-running the calibrated config
//! at the same seed reproduces the snapshot *exactly*; any drift beyond
//! the tolerance is a code change showing up in simulated performance.
//! The gate is therefore two-sided: a slower step time is a
//! **regression** (fail), a faster one is a **stale baseline** (also
//! fail, with a message telling the committer to refresh the snapshot)
//! — both mean the committed trajectory no longer describes the tree.

use serde::{Deserialize, Serialize};

/// One gated measurement of the snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotRow {
    /// Stable row key, e.g. `train/laer-moe` or `serve/laer/p99_ttft`.
    pub key: String,
    /// Average simulated step seconds (the gated quantity).
    pub step_time: f64,
    /// Tokens per second at that step time (context, not gated).
    pub tokens_per_second: f64,
}

/// The committed benchmark snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchSnapshot {
    /// Snapshot schema version (bump on layout changes).
    pub version: u32,
    /// Human description of the calibrated config that produced it.
    pub config: String,
    /// Gated rows.
    pub rows: Vec<SnapshotRow>,
}

impl BenchSnapshot {
    /// Current schema version.
    pub const VERSION: u32 = 1;

    /// Creates a snapshot.
    pub fn new(config: impl Into<String>, rows: Vec<SnapshotRow>) -> Self {
        Self {
            version: Self::VERSION,
            config: config.into(),
            rows,
        }
    }

    /// Looks up a row by key.
    pub fn row(&self, key: &str) -> Option<&SnapshotRow> {
        self.rows.iter().find(|r| r.key == key)
    }
}

/// Outcome of one row's comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GateStatus {
    /// Within tolerance.
    Ok,
    /// Step time grew beyond tolerance — a perf regression.
    Regression,
    /// Step time shrank beyond tolerance — the committed baseline is
    /// stale and must be refreshed.
    StaleBaseline,
    /// Row exists in the baseline but not in the current run.
    MissingInCurrent,
    /// Row exists in the current run but not in the baseline.
    MissingInBaseline,
}

impl GateStatus {
    /// Whether this status fails the gate.
    pub fn is_failure(self) -> bool {
        !matches!(self, GateStatus::Ok | GateStatus::MissingInBaseline)
    }
}

/// One row's comparison result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GateCheck {
    /// Row key.
    pub key: String,
    /// Baseline step seconds (0 when missing).
    pub baseline: f64,
    /// Current step seconds (0 when missing).
    pub current: f64,
    /// Signed relative delta `(current − baseline) / baseline`.
    pub delta: f64,
    /// Verdict.
    pub status: GateStatus,
}

/// The gate's full report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GateReport {
    /// Relative tolerance the comparison used.
    pub tolerance: f64,
    /// Per-row results, baseline order then new rows.
    pub checks: Vec<GateCheck>,
    /// Whether every check passed.
    pub pass: bool,
}

impl GateReport {
    /// Human-readable one-line-per-row rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.checks {
            let verdict = match c.status {
                GateStatus::Ok => "ok",
                GateStatus::Regression => "REGRESSION",
                GateStatus::StaleBaseline => "STALE BASELINE (faster — refresh snapshot)",
                GateStatus::MissingInCurrent => "MISSING IN CURRENT",
                GateStatus::MissingInBaseline => "new row (not gated)",
            };
            out.push_str(&format!(
                "{:<28} base {:>10.4} ms  now {:>10.4} ms  {:>+7.2}%  {}\n",
                c.key,
                c.baseline * 1e3,
                c.current * 1e3,
                c.delta * 100.0,
                verdict
            ));
        }
        out.push_str(&format!(
            "gate: {} (tolerance ±{:.1}%)\n",
            if self.pass { "PASS" } else { "FAIL" },
            self.tolerance * 100.0
        ));
        out
    }
}

/// Compares `current` against `baseline` with relative `tolerance`.
///
/// Each baseline row is matched to a current row by key; the step-time
/// drift beyond tolerance fails the gate in either direction (see the
/// module docs for why faster also fails). Rows new in `current` are
/// reported but not gated.
///
/// # Panics
///
/// Panics if `tolerance` is not in `(0, 1)`.
pub fn gate_snapshots(
    baseline: &BenchSnapshot,
    current: &BenchSnapshot,
    tolerance: f64,
) -> GateReport {
    assert!(
        tolerance > 0.0 && tolerance < 1.0,
        "tolerance must be a fraction in (0, 1)"
    );
    let mut checks = Vec::new();
    for b in &baseline.rows {
        let check = match current.row(&b.key) {
            None => GateCheck {
                key: b.key.clone(),
                baseline: b.step_time,
                current: 0.0,
                delta: -1.0,
                status: GateStatus::MissingInCurrent,
            },
            Some(c) => {
                let delta = if b.step_time == 0.0 {
                    0.0
                } else {
                    (c.step_time - b.step_time) / b.step_time
                };
                let status = if delta > tolerance {
                    GateStatus::Regression
                } else if delta < -tolerance {
                    GateStatus::StaleBaseline
                } else {
                    GateStatus::Ok
                };
                GateCheck {
                    key: b.key.clone(),
                    baseline: b.step_time,
                    current: c.step_time,
                    delta,
                    status,
                }
            }
        };
        checks.push(check);
    }
    for c in &current.rows {
        if baseline.row(&c.key).is_none() {
            checks.push(GateCheck {
                key: c.key.clone(),
                baseline: 0.0,
                current: c.step_time,
                delta: 0.0,
                status: GateStatus::MissingInBaseline,
            });
        }
    }
    let pass = !checks.iter().any(|c| c.status.is_failure());
    GateReport {
        tolerance,
        checks,
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(rows: &[(&str, f64)]) -> BenchSnapshot {
        BenchSnapshot::new(
            "test",
            rows.iter()
                .map(|&(k, t)| SnapshotRow {
                    key: k.into(),
                    step_time: t,
                    tokens_per_second: 1.0 / t,
                })
                .collect(),
        )
    }

    #[test]
    fn identical_snapshots_pass() {
        let s = snap(&[("train/laer-moe", 0.010), ("train/fsdp+ep", 0.015)]);
        let r = gate_snapshots(&s, &s, 0.05);
        assert!(r.pass);
        assert!(r.checks.iter().all(|c| c.status == GateStatus::Ok));
    }

    #[test]
    fn regression_fails() {
        let base = snap(&[("train/laer-moe", 0.010)]);
        let cur = snap(&[("train/laer-moe", 0.011)]);
        let r = gate_snapshots(&base, &cur, 0.05);
        assert!(!r.pass);
        assert_eq!(r.checks[0].status, GateStatus::Regression);
        assert!((r.checks[0].delta - 0.1).abs() < 1e-9);
        assert!(r.render().contains("REGRESSION"));
    }

    #[test]
    fn doctored_inflated_baseline_fails_as_stale() {
        // A baseline doctored with an inflated step time makes the
        // (unchanged) current run look faster — still a gate failure.
        let base = snap(&[("train/laer-moe", 0.020)]);
        let cur = snap(&[("train/laer-moe", 0.010)]);
        let r = gate_snapshots(&base, &cur, 0.05);
        assert!(!r.pass);
        assert_eq!(r.checks[0].status, GateStatus::StaleBaseline);
    }

    #[test]
    fn within_tolerance_passes() {
        let base = snap(&[("k", 0.010)]);
        let cur = snap(&[("k", 0.0103)]);
        assert!(gate_snapshots(&base, &cur, 0.05).pass);
    }

    #[test]
    fn missing_rows_are_classified() {
        let base = snap(&[("old", 0.01)]);
        let cur = snap(&[("new", 0.01)]);
        let r = gate_snapshots(&base, &cur, 0.05);
        assert!(!r.pass, "baseline row vanished");
        assert_eq!(r.checks[0].status, GateStatus::MissingInCurrent);
        assert_eq!(r.checks[1].status, GateStatus::MissingInBaseline);
        assert!(!r.checks[1].status.is_failure(), "new rows don't gate");
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let s = snap(&[("train/laer-moe", 0.010)]);
        let json = serde_json::to_string_pretty(&s).unwrap();
        let back: BenchSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
        assert_eq!(back.version, BenchSnapshot::VERSION);
    }
}
