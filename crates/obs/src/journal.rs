//! The structured JSONL event journal.
//!
//! A [`Journal`] is an ordered list of typed events; each event
//! serialises as one compact JSON object per line with a `type` field,
//! so the file is greppable and trivially parsed back. All timestamps
//! are virtual (simulator) seconds — never wall-clock — so the journal
//! of a seeded run is byte-identical across re-runs.

use laer_cluster::DeviceId;
use laer_sim::{StreamKind, Timeline};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::{self, Write};

use crate::registry::Histogram;

/// Busy fraction of every stream of one device over the iteration
/// makespan (S1–S4 in Fig. 5's labelling).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamUtilization {
    /// Device index.
    pub device: usize,
    /// S1 compute busy fraction.
    pub s1_compute: f64,
    /// S2 prefetch busy fraction.
    pub s2_prefetch: f64,
    /// S3 All-to-All busy fraction.
    pub s3_a2a: f64,
    /// S4 gradient-sync busy fraction.
    pub s4_grad_sync: f64,
}

/// Exposed-vs-overlapped seconds of one span-label bucket, summed over
/// devices: `overlapped` is the part of the bucket's busy time during
/// which the same device's compute stream (S1) was also busy —
/// communication the schedule successfully hid; `exposed` is the rest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommOverlap {
    /// Span label (the Fig. 10a breakdown bucket), display form.
    pub label: String,
    /// Seconds hidden under compute.
    pub overlapped: f64,
    /// Seconds not hidden under compute.
    pub exposed: f64,
}

/// Exposed-vs-overlapped seconds of the token A2A stream for one
/// pipeline chunk, summed over devices — the per-chunk columns proving
/// (or disproving) that the chunked dispatch/combine pipeline actually
/// hid communication under compute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChunkOverlap {
    /// Chunk index within the pipeline (`0 .. num_chunks`).
    pub chunk: usize,
    /// A2A seconds hidden under the same device's compute stream.
    pub overlapped: f64,
    /// A2A seconds not hidden under compute.
    pub exposed: f64,
}

/// One training iteration's telemetry record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationRecord {
    /// System under test.
    pub system: String,
    /// Global iteration index.
    pub iteration: u64,
    /// Simulated end-to-end step seconds.
    pub step_time: f64,
    /// Routing imbalance index: mean over layers of max-device-load /
    /// ideal-load (Fig. 10b's metric).
    pub imbalance: f64,
    /// Pipeline chunk count the executor scheduled with (1 =
    /// whole-iteration schedule).
    pub num_chunks: usize,
    /// Per-device stream busy fractions.
    pub streams: Vec<StreamUtilization>,
    /// Exposed-vs-overlapped seconds per span label.
    pub comm: Vec<CommOverlap>,
    /// Exposed-vs-overlapped A2A seconds per pipeline chunk. The
    /// executor emits each layer's A2A spans as consecutive blocks of
    /// `num_chunks` per device stream, so position modulo `num_chunks`
    /// identifies the chunk.
    pub a2a_chunks: Vec<ChunkOverlap>,
}

/// A compact, serialisable snapshot of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Finite bucket upper bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket counts (last is `+Inf`).
    pub counts: Vec<u64>,
    /// Sum of observations.
    pub sum: f64,
    /// Observation count.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Snapshots a histogram.
    pub fn of(h: &Histogram) -> Self {
        Self {
            bounds: h.bounds().to_vec(),
            counts: h.counts().to_vec(),
            sum: h.sum(),
            count: h.count(),
        }
    }
}

/// One serving run's telemetry record: queue depth and latency
/// distributions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingRecord {
    /// Serving system identifier.
    pub system: String,
    /// Scheduler steps executed.
    pub steps: u64,
    /// Admission-queue depth distribution, sampled once per step.
    pub queue_depth: HistogramSnapshot,
    /// Time-to-first-token distribution (seconds).
    pub ttft: HistogramSnapshot,
    /// Time-per-output-token distribution (seconds).
    pub tpot: HistogramSnapshot,
}

/// One faulted serving run's resilience telemetry: failure, retry and
/// shed accounting plus every recovery episode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilienceRecord {
    /// Serving system identifier.
    pub system: String,
    /// Device failures detected.
    pub failures: u64,
    /// Failed devices that rejoined after their fault window closed.
    pub rejoins: u64,
    /// In-flight requests interrupted by failures.
    pub interrupted: u64,
    /// Retry re-enqueues after interruptions.
    pub retries: u64,
    /// Arrivals shed because the admission queue was full.
    pub shed_queue_full: u64,
    /// Arrivals shed by the SLO-aware brownout.
    pub shed_brownout: u64,
    /// Requests shed after exhausting their retry cap.
    pub shed_retry_exhausted: u64,
    /// Requests left unserved at the step cap.
    pub shed_unserved: u64,
    /// Recovery episodes as `(kind, detected, resumed)` triples.
    pub recoveries: Vec<(String, f64, f64)>,
}

/// One scheduler step of a faulted serving run: the queue depth and
/// live-device count at step start.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeStepRecord {
    /// Serving system identifier.
    pub system: String,
    /// Step index.
    pub step: u64,
    /// Virtual time at step start.
    pub time: f64,
    /// Admission-queue depth at step start.
    pub queue_depth: u64,
    /// Devices serving this step.
    pub live_devices: u64,
}

/// One epoch of an RL post-training run: the rollout phase records
/// routing traces, the train phase replays them with the configured
/// predictor, and this record joins the epoch's headline outcomes so
/// foresight-vs-EMA error is visible per predictor mode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RlEpochRecord {
    /// System identifier (mode-qualified, e.g. `laer-moe[replay]`).
    pub system: String,
    /// Predictor mode of the train phase (`ema` or `replay`).
    pub mode: String,
    /// Epoch index.
    pub epoch: u64,
    /// Rollouts recorded (= train iterations replayed) this epoch.
    pub rollouts: u64,
    /// Rollout→train demand-drift fraction applied this epoch.
    pub drift: f64,
    /// Average train-phase step time, seconds.
    pub avg_step_time: f64,
    /// Mean |predicted-actual|/actual over the epoch's plan decisions.
    pub audit_mean_abs_rel_error: f64,
    /// Expert-weight relocations executed across the epoch's layouts.
    pub relocation_moves: u64,
}

/// The journal: an ordered list of serialised events.
#[derive(Debug, Clone, Default)]
pub struct Journal {
    events: Vec<serde::Value>,
}

impl Journal {
    /// Creates an empty journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends `record` as an event of type `kind` (the `type` field is
    /// prepended to the record's own fields).
    ///
    /// # Panics
    ///
    /// Panics if `record` does not serialise to a JSON object.
    pub fn push<T: Serialize>(&mut self, kind: &str, record: &T) {
        let serde::Value::Object(mut fields) = record.serialize_value() else {
            panic!("journal events must serialise to objects");
        };
        fields.insert(0, ("type".to_string(), serde::Value::Str(kind.to_string())));
        self.events.push(serde::Value::Object(fields));
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the journal is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The raw events.
    pub fn events(&self) -> &[serde::Value] {
        &self.events
    }

    /// Writes the journal as JSONL: one compact JSON object per line.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `out`.
    pub fn write_jsonl<W: Write>(&self, mut out: W) -> io::Result<()> {
        for event in &self.events {
            let line = serde_json::to_string(event)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            out.write_all(line.as_bytes())?;
            out.write_all(b"\n")?;
        }
        Ok(())
    }

    /// Renders the journal to a JSONL string.
    pub fn to_jsonl(&self) -> String {
        let mut buf = Vec::new();
        self.write_jsonl(&mut buf)
            .unwrap_or_else(|_| unreachable!("Vec<u8> writes cannot fail"));
        String::from_utf8(buf).unwrap_or_else(|_| unreachable!("serde_json emits UTF-8"))
    }
}

/// Merges a span list into disjoint busy intervals (input intervals may
/// overlap arbitrarily; output is sorted and non-overlapping).
fn merge_intervals(mut iv: Vec<(f64, f64)>) -> Vec<(f64, f64)> {
    iv.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
    let mut out: Vec<(f64, f64)> = Vec::with_capacity(iv.len());
    for (s, e) in iv {
        if e <= s {
            continue;
        }
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

/// Length of the intersection of `(s, e)` with the merged interval set.
///
/// The set is sorted and disjoint, so a binary search finds the first
/// interval that can intersect and the walk stops at the first one past
/// `e` — O(log n + k) for k overlapped intervals, instead of the full
/// linear scan this used to be (O(spans × intervals) per device across
/// an iteration record).
fn overlap_with(busy: &[(f64, f64)], s: f64, e: f64) -> f64 {
    let first = busy.partition_point(|&(_, be)| be <= s);
    busy[first..]
        .iter()
        .take_while(|&&(bs, _)| bs < e)
        .map(|&(bs, be)| be.min(e) - bs.max(s))
        .sum()
}

/// Computes an [`IterationRecord`] from one iteration's span timeline.
///
/// * `streams` — per-device busy fraction of each stream over the
///   makespan (fault annotation spans excluded, matching
///   [`Timeline::stream_utilization`]);
/// * `comm` — for every non-compute-stream span label, the split of its
///   busy seconds into overlapped-with-S1 and exposed, summed across
///   devices and sorted by label for determinism;
/// * `a2a_chunks` — the same split for the S3 token A2A stream broken
///   out per pipeline chunk: the scheduler emits each layer's A2A spans
///   as consecutive blocks of `num_chunks` per device stream (dispatch
///   chunks, then combine chunks), so the `i`-th A2A span of a device
///   belongs to chunk `i % num_chunks`.
pub fn iteration_record(
    system: &str,
    iteration: u64,
    step_time: f64,
    imbalance: f64,
    timeline: &Timeline,
    n_devices: usize,
    num_chunks: usize,
) -> IterationRecord {
    let num_chunks = num_chunks.max(1);
    let streams = (0..n_devices)
        .map(|d| {
            let dev = DeviceId::new(d);
            StreamUtilization {
                device: d,
                s1_compute: timeline.stream_utilization(dev, StreamKind::Compute),
                s2_prefetch: timeline.stream_utilization(dev, StreamKind::Prefetch),
                s3_a2a: timeline.stream_utilization(dev, StreamKind::A2a),
                s4_grad_sync: timeline.stream_utilization(dev, StreamKind::GradSync),
            }
        })
        .collect();

    // Per-device compute busy intervals, then exposed/overlapped split
    // of every non-compute span against its own device's compute.
    let mut compute: BTreeMap<usize, Vec<(f64, f64)>> = BTreeMap::new();
    for s in timeline.spans() {
        if s.stream == StreamKind::Compute && !s.label.is_annotation() {
            compute
                .entry(s.device.index())
                .or_default()
                .push((s.start, s.end));
        }
    }
    let compute: BTreeMap<usize, Vec<(f64, f64)>> = compute
        .into_iter()
        .map(|(d, iv)| (d, merge_intervals(iv)))
        .collect();
    let empty: Vec<(f64, f64)> = Vec::new();
    let mut comm: BTreeMap<String, (f64, f64)> = BTreeMap::new();
    for s in timeline.spans() {
        if s.stream == StreamKind::Compute || s.label.is_annotation() {
            continue;
        }
        let busy = compute.get(&s.device.index()).unwrap_or(&empty);
        let overlapped = overlap_with(busy, s.start, s.end);
        let entry = comm.entry(s.label.to_string()).or_insert((0.0, 0.0));
        entry.0 += overlapped;
        entry.1 += s.duration() - overlapped;
    }
    // Per-chunk attribution of the S3 A2A stream: walk each device's
    // A2A spans in stream (enqueue) order and fold position mod
    // `num_chunks` — valid because the scheduler emits whole blocks of
    // `num_chunks` A2A spans per device per phase.
    let mut chunk_acc: Vec<(f64, f64)> = vec![(0.0, 0.0); num_chunks];
    for d in 0..n_devices {
        let dev = DeviceId::new(d);
        let busy = compute.get(&d).unwrap_or(&empty);
        for (i, s) in timeline
            .device_stream_spans(dev, StreamKind::A2a)
            .filter(|s| !s.label.is_annotation())
            .enumerate()
        {
            let overlapped = overlap_with(busy, s.start, s.end);
            let slot = &mut chunk_acc[i % num_chunks];
            slot.0 += overlapped;
            slot.1 += s.duration() - overlapped;
        }
    }
    IterationRecord {
        system: system.to_string(),
        iteration,
        step_time,
        imbalance,
        num_chunks,
        streams,
        a2a_chunks: chunk_acc
            .into_iter()
            .enumerate()
            .map(|(chunk, (overlapped, exposed))| ChunkOverlap {
                chunk,
                overlapped,
                exposed,
            })
            .collect(),
        comm: comm
            .into_iter()
            .map(|(label, (overlapped, exposed))| CommOverlap {
                label,
                overlapped,
                exposed,
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laer_sim::{Span, SpanLabel};

    fn span(device: usize, stream: StreamKind, label: SpanLabel, start: f64, end: f64) -> Span {
        Span {
            device: DeviceId::new(device),
            stream,
            label,
            start,
            end,
        }
    }

    #[test]
    fn interval_merge_handles_overlap_and_order() {
        let merged = merge_intervals(vec![(3.0, 4.0), (0.0, 1.0), (0.5, 2.0), (2.0, 3.0)]);
        assert_eq!(merged, vec![(0.0, 4.0)]);
        assert_eq!(overlap_with(&merged, 1.0, 5.0), 3.0);
        assert_eq!(overlap_with(&merged, 4.0, 5.0), 0.0);
    }

    #[test]
    fn exposed_vs_overlapped_split() {
        let mut t = Timeline::new();
        // Compute busy [0, 2]; a 4-second prefetch [1, 5] overlaps 1s.
        t.push(span(
            0,
            StreamKind::Compute,
            SpanLabel::ExpertCompute,
            0.0,
            2.0,
        ));
        t.push(span(0, StreamKind::Prefetch, SpanLabel::Prefetch, 1.0, 5.0));
        let rec = iteration_record("laer-moe", 3, 5.0, 1.2, &t, 1, 1);
        assert_eq!(rec.comm.len(), 1);
        let c = &rec.comm[0];
        assert_eq!(c.label, "prefetch");
        assert!((c.overlapped - 1.0).abs() < 1e-12);
        assert!((c.exposed - 3.0).abs() < 1e-12);
        assert_eq!(rec.streams.len(), 1);
        assert!((rec.streams[0].s1_compute - 0.4).abs() < 1e-12);
        assert!((rec.streams[0].s2_prefetch - 0.8).abs() < 1e-12);
    }

    #[test]
    fn a2a_against_other_device_compute_is_exposed() {
        let mut t = Timeline::new();
        t.push(span(0, StreamKind::Compute, SpanLabel::Attention, 0.0, 4.0));
        // Device 1's A2A has no local compute to hide under.
        t.push(span(1, StreamKind::A2a, SpanLabel::AllToAll, 0.0, 2.0));
        let rec = iteration_record("x", 0, 4.0, 1.0, &t, 2, 1);
        let c = &rec.comm[0];
        assert_eq!(c.label, "all-to-all");
        assert_eq!(c.overlapped, 0.0);
        assert_eq!(c.exposed, 2.0);
    }

    /// Per-chunk attribution: two A2A spans per device fold into chunks
    /// by stream position, each split against local compute.
    #[test]
    fn per_chunk_a2a_attribution() {
        let mut t = Timeline::new();
        // Device 0 compute busy [0, 3].
        t.push(span(
            0,
            StreamKind::Compute,
            SpanLabel::ExpertCompute,
            0.0,
            3.0,
        ));
        // Chunk 0 dispatch [0, 2]: fully overlapped.
        t.push(span(0, StreamKind::A2a, SpanLabel::AllToAll, 0.0, 2.0));
        // Chunk 1 dispatch [2, 5]: 1s overlapped, 2s exposed.
        t.push(span(0, StreamKind::A2a, SpanLabel::AllToAll, 2.0, 5.0));
        // A fault annotation on S3 must not shift chunk positions.
        t.push(span(0, StreamKind::A2a, SpanLabel::Fault, 0.0, 9.0));
        let rec = iteration_record("laer-moe", 0, 5.0, 1.0, &t, 1, 2);
        assert_eq!(rec.num_chunks, 2);
        assert_eq!(rec.a2a_chunks.len(), 2);
        assert!((rec.a2a_chunks[0].overlapped - 2.0).abs() < 1e-12);
        assert!((rec.a2a_chunks[0].exposed - 0.0).abs() < 1e-12);
        assert!((rec.a2a_chunks[1].overlapped - 1.0).abs() < 1e-12);
        assert!((rec.a2a_chunks[1].exposed - 2.0).abs() < 1e-12);
        // The per-chunk split sums to the label-level A2A split.
        let a2a = rec.comm.iter().find(|c| c.label == "all-to-all").unwrap();
        let (ov, ex) = rec
            .a2a_chunks
            .iter()
            .fold((0.0, 0.0), |(o, e), c| (o + c.overlapped, e + c.exposed));
        assert!((ov - a2a.overlapped).abs() < 1e-12);
        assert!((ex - a2a.exposed).abs() < 1e-12);
        // Unchunked records collapse to a single chunk column, and a
        // `0` chunk count clamps to 1.
        let whole = iteration_record("laer-moe", 0, 5.0, 1.0, &t, 1, 0);
        assert_eq!(whole.num_chunks, 1);
        assert_eq!(whole.a2a_chunks.len(), 1);
        assert!((whole.a2a_chunks[0].overlapped - ov).abs() < 1e-12);
    }

    #[test]
    fn journal_jsonl_is_typed_and_deterministic() {
        let build = || {
            let mut j = Journal::new();
            j.push(
                "serving",
                &ServingRecord {
                    system: "laer".into(),
                    steps: 10,
                    queue_depth: HistogramSnapshot::of(&Histogram::linear(0.0, 4.0, 3)),
                    ttft: HistogramSnapshot::of(&Histogram::exponential(1e-3, 4.0, 4)),
                    tpot: HistogramSnapshot::of(&Histogram::exponential(1e-4, 4.0, 4)),
                },
            );
            let mut t = Timeline::new();
            t.push(span(0, StreamKind::Compute, SpanLabel::Attention, 0.0, 1.0));
            j.push(
                "iteration",
                &iteration_record("laer-moe", 0, 1.0, 1.0, &t, 1, 1),
            );
            j.to_jsonl()
        };
        let a = build();
        assert_eq!(a, build());
        assert_eq!(a.lines().count(), 2);
        let first = a.lines().next().unwrap();
        assert!(first.starts_with("{\"type\":\"serving\""));
        // Every line parses back as JSON.
        for line in a.lines() {
            serde_json::parse_value(line).unwrap();
        }
    }
}
