//! Streaming anomaly detectors and the fault-scored alert scoreboard.
//!
//! Detectors consume the same per-step telemetry the journal records
//! (step time, queue depth, routing imbalance, live-device count) and
//! emit deterministic [`Alert`] events — no wall clock, no randomness,
//! every threshold crossed on virtual time. PR 7's chaos machinery
//! provides labeled fault ground truth ([`laer_sim::FaultPlan`]), so
//! alerts are *scored*, not eyeballed: [`score_alerts`] joins them
//! against fault windows into a [`Scoreboard`] of time-to-detect,
//! precision and recall per fault kind.
//!
//! Two detector shapes cover the journal's signals:
//!
//! * [`EwmaDetector`] — exponentially-weighted mean/variance with a
//!   one-sided upward z-score, for drifting scalar series (step time,
//!   queue depth, imbalance) where "too high vs recent history" is the
//!   anomaly;
//! * [`ThresholdRule`] — an edge-triggered comparison against a fixed
//!   limit, for signals with a hard invariant (live devices dropping
//!   below the fleet size).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One detector firing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    /// Virtual time of the observation that fired.
    pub time: f64,
    /// Detector identifier (e.g. `ewma`, `threshold`).
    pub detector: String,
    /// Signal name (e.g. `step_time`, `queue_depth`, `live_devices`).
    pub signal: String,
    /// Observed value.
    pub value: f64,
    /// Detector score at firing (z-score for EWMA, excursion beyond the
    /// limit for threshold rules).
    pub score: f64,
}

/// Streaming EWMA mean/variance with a one-sided upward z-score.
///
/// The detector scores each observation against the mean and variance
/// of the *previous* observations (so an anomaly cannot mask itself),
/// then folds the value in. The first `warmup` observations only train.
/// `min_std` floors the standard deviation so a perfectly flat warmup
/// (deterministic fault-free steps) doesn't make the first jitter an
/// infinite-z anomaly.
#[derive(Debug, Clone)]
pub struct EwmaDetector {
    signal: String,
    alpha: f64,
    threshold: f64,
    warmup: usize,
    min_std: f64,
    mean: f64,
    var: f64,
    seen: usize,
}

impl EwmaDetector {
    /// Creates a detector for `signal` with smoothing factor `alpha`,
    /// firing when the upward z-score exceeds `threshold` after
    /// `warmup` training observations.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha <= 1`, `threshold > 0` and
    /// `min_std > 0`.
    pub fn new(signal: &str, alpha: f64, threshold: f64, warmup: usize, min_std: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        assert!(threshold > 0.0, "threshold must be positive");
        assert!(min_std > 0.0, "min_std must be positive");
        Self {
            signal: signal.to_string(),
            alpha,
            threshold,
            warmup: warmup.max(1),
            min_std,
            mean: 0.0,
            var: 0.0,
            seen: 0,
        }
    }

    /// Scores one observation, then folds it into the running state.
    pub fn observe(&mut self, time: f64, value: f64) -> Option<Alert> {
        let alert = if self.seen >= self.warmup {
            let std = self.var.sqrt().max(self.min_std);
            let z = (value - self.mean) / std;
            (z > self.threshold).then(|| Alert {
                time,
                detector: "ewma".to_string(),
                signal: self.signal.clone(),
                value,
                score: z,
            })
        } else {
            None
        };
        if self.seen == 0 {
            self.mean = value;
        } else {
            let delta = value - self.mean;
            self.mean += self.alpha * delta;
            self.var = (1.0 - self.alpha) * (self.var + self.alpha * delta * delta);
        }
        self.seen += 1;
        alert
    }
}

/// Edge-triggered fixed-limit rule: fires once when the signal enters
/// violation and re-arms when it returns to normal, so a sustained
/// excursion produces one alert, not one per sample.
#[derive(Debug, Clone)]
pub struct ThresholdRule {
    signal: String,
    limit: f64,
    below: bool,
    in_violation: bool,
}

impl ThresholdRule {
    /// A rule firing when `signal` drops strictly below `limit`.
    pub fn below(signal: &str, limit: f64) -> Self {
        Self {
            signal: signal.to_string(),
            limit,
            below: true,
            in_violation: false,
        }
    }

    /// A rule firing when `signal` rises strictly above `limit`.
    pub fn above(signal: &str, limit: f64) -> Self {
        Self {
            signal: signal.to_string(),
            limit,
            below: false,
            in_violation: false,
        }
    }

    /// Scores one observation.
    pub fn observe(&mut self, time: f64, value: f64) -> Option<Alert> {
        let violated = if self.below {
            value < self.limit
        } else {
            value > self.limit
        };
        let fired = violated && !self.in_violation;
        self.in_violation = violated;
        fired.then(|| Alert {
            time,
            detector: "threshold".to_string(),
            signal: self.signal.clone(),
            value,
            score: (value - self.limit).abs(),
        })
    }
}

/// One labeled fault's ground-truth window, for scoring.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultWindow {
    /// Fault kind (e.g. `device-failure`, `straggler`).
    pub kind: String,
    /// Window start — the instant a detector could first react to.
    pub start: f64,
    /// Window end (alerts up to `end + grace` still count).
    pub end: f64,
}

/// Per-fault-kind detection quality.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoreRow {
    /// Fault kind.
    pub kind: String,
    /// Ground-truth fault windows of this kind.
    pub events: u64,
    /// Windows with at least one matching alert.
    pub detected: u64,
    /// Mean seconds from window start to the first matching alert,
    /// over detected windows (0 when none detected).
    pub mean_ttd: f64,
    /// `detected / events`.
    pub recall: f64,
}

/// The detector scoreboard: per-kind rows plus global precision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scoreboard {
    /// Per-fault-kind rows, sorted by kind.
    pub rows: Vec<ScoreRow>,
    /// Alerts matching at least one fault window.
    pub true_positives: u64,
    /// Alerts matching no fault window.
    pub false_positives: u64,
    /// `TP / (TP + FP)` (1.0 when no alerts fired).
    pub precision: f64,
}

impl Scoreboard {
    /// The row for `kind`, if any fault of that kind was planned.
    pub fn row(&self, kind: &str) -> Option<&ScoreRow> {
        self.rows.iter().find(|r| r.kind == kind)
    }
}

/// Joins `alerts` against ground-truth `windows`. An alert is a true
/// positive if it falls inside any window (extended by `grace` seconds
/// past the end — detectors observing per-step aggregates legitimately
/// fire just after a short window closes); a window is detected by its
/// first matching alert, and that alert's delay from the window start
/// is the window's time-to-detect.
pub fn score_alerts(alerts: &[Alert], windows: &[FaultWindow], grace: f64) -> Scoreboard {
    let matches = |a: &Alert, w: &FaultWindow| a.time >= w.start && a.time <= w.end + grace;
    let mut true_positives = 0;
    let mut false_positives = 0;
    for a in alerts {
        if windows.iter().any(|w| matches(a, w)) {
            true_positives += 1;
        } else {
            false_positives += 1;
        }
    }
    let mut by_kind: BTreeMap<&str, (u64, u64, f64)> = BTreeMap::new();
    for w in windows {
        let entry = by_kind.entry(w.kind.as_str()).or_insert((0, 0, 0.0));
        entry.0 += 1;
        if let Some(first) = alerts.iter().find(|a| matches(a, w)) {
            entry.1 += 1;
            entry.2 += first.time - w.start;
        }
    }
    let rows = by_kind
        .into_iter()
        .map(|(kind, (events, detected, ttd_sum))| ScoreRow {
            kind: kind.to_string(),
            events,
            detected,
            mean_ttd: if detected > 0 {
                ttd_sum / detected as f64
            } else {
                0.0
            },
            recall: detected as f64 / events as f64,
        })
        .collect();
    let fired = true_positives + false_positives;
    Scoreboard {
        rows,
        true_positives,
        false_positives,
        precision: if fired > 0 {
            true_positives as f64 / fired as f64
        } else {
            1.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_flags_a_step_jump_once_warm() {
        let mut det = EwmaDetector::new("step_time", 0.3, 4.0, 5, 1e-6);
        for i in 0..20 {
            let v = 1.0 + 1e-4 * (i % 3) as f64;
            assert!(det.observe(i as f64, v).is_none(), "steady state is quiet");
        }
        let alert = det.observe(20.0, 3.0).expect("3x jump fires");
        assert_eq!(alert.signal, "step_time");
        assert_eq!(alert.detector, "ewma");
        assert!(alert.score > 4.0);
    }

    #[test]
    fn ewma_trains_through_warmup() {
        let mut det = EwmaDetector::new("x", 0.5, 1.0, 3, 1e-9);
        // A huge first value cannot fire during warmup.
        assert!(det.observe(0.0, 100.0).is_none());
        assert!(det.observe(1.0, 100.0).is_none());
        assert!(det.observe(2.0, 100.0).is_none());
    }

    #[test]
    fn threshold_rule_is_edge_triggered() {
        let mut rule = ThresholdRule::below("live_devices", 8.0);
        assert!(rule.observe(0.0, 8.0).is_none());
        let a = rule.observe(1.0, 6.0).expect("drop fires");
        assert_eq!(a.score, 2.0);
        assert!(rule.observe(2.0, 6.0).is_none(), "sustained drop is quiet");
        assert!(rule.observe(3.0, 8.0).is_none(), "recovery re-arms");
        assert!(rule.observe(4.0, 7.0).is_some(), "next drop fires again");
        let mut above = ThresholdRule::above("queue_depth", 10.0);
        assert!(above.observe(0.0, 10.0).is_none());
        assert!(above.observe(1.0, 11.0).is_some());
    }

    #[test]
    fn scoreboard_joins_alerts_to_windows() {
        let alerts = vec![
            Alert {
                time: 1.05,
                detector: "threshold".into(),
                signal: "live_devices".into(),
                value: 7.0,
                score: 1.0,
            },
            Alert {
                time: 9.0,
                detector: "ewma".into(),
                signal: "queue_depth".into(),
                value: 50.0,
                score: 6.0,
            },
        ];
        let windows = vec![
            FaultWindow {
                kind: "device-failure".into(),
                start: 1.0,
                end: 2.0,
            },
            FaultWindow {
                kind: "straggler".into(),
                start: 4.0,
                end: 5.0,
            },
        ];
        let board = score_alerts(&alerts, &windows, 0.0);
        assert_eq!(board.true_positives, 1);
        assert_eq!(board.false_positives, 1);
        assert!((board.precision - 0.5).abs() < 1e-12);
        let df = board.row("device-failure").unwrap();
        assert_eq!(df.detected, 1);
        assert!((df.mean_ttd - 0.05).abs() < 1e-12);
        assert_eq!(df.recall, 1.0);
        let st = board.row("straggler").unwrap();
        assert_eq!(st.detected, 0);
        assert_eq!(st.recall, 0.0);
        assert_eq!(st.mean_ttd, 0.0);
        // Grace extends the straggler window to cover the late alert.
        let lenient = score_alerts(&alerts, &windows, 4.0);
        assert_eq!(lenient.row("straggler").unwrap().detected, 1);
        assert_eq!(lenient.false_positives, 0);
        // No alerts at all: precision defaults to 1.
        assert_eq!(score_alerts(&[], &windows, 0.0).precision, 1.0);
    }
}
