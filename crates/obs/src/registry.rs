//! The typed metrics registry: counters, gauges and fixed-bucket
//! histograms with Prometheus/OpenMetrics text and JSON export.
//!
//! Unlike `prometheus`-style registries there is no interior mutability
//! and no background scraping: the registry is a plain value the driver
//! mutates explicitly, and exports are pure functions of its contents.
//! Families and series live in `BTreeMap`s, so export order — and
//! therefore the exported bytes — is deterministic.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// What kind of metric a family holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetricKind {
    /// Monotonically increasing `u64`.
    Counter,
    /// Last-written `f64`.
    Gauge,
    /// Fixed-bucket distribution.
    Histogram,
}

impl MetricKind {
    fn text(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// A fixed-bucket histogram (cumulative export, Prometheus-style).
///
/// Bucket bounds are fixed at construction — observations never
/// allocate or rebucket, keeping the memory profile and the export
/// layout independent of the data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Upper bounds of the finite buckets, strictly increasing.
    bounds: Vec<f64>,
    /// Per-bucket observation counts; the last entry is the overflow
    /// (`+Inf`) bucket, so `counts.len() == bounds.len() + 1`.
    counts: Vec<u64>,
    /// Sum of all observed values.
    sum: f64,
    /// Number of observations.
    count: u64,
}

impl Histogram {
    /// Creates a histogram with the given finite bucket upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty, non-finite or not strictly
    /// increasing.
    pub fn new(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        for w in bounds.windows(2) {
            assert!(w[0] < w[1], "bucket bounds must be strictly increasing");
        }
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "bucket bounds must be finite"
        );
        let n = bounds.len();
        Self {
            bounds,
            counts: vec![0; n + 1],
            sum: 0.0,
            count: 0,
        }
    }

    /// `n` buckets from `start`, each `factor` times the previous
    /// (`factor > 1`).
    ///
    /// # Panics
    ///
    /// Panics on a non-positive `start`, `factor <= 1` or `n == 0`.
    pub fn exponential(start: f64, factor: f64, n: usize) -> Self {
        assert!(start > 0.0 && factor > 1.0 && n > 0, "invalid buckets");
        let mut bounds = Vec::with_capacity(n);
        let mut b = start;
        for _ in 0..n {
            bounds.push(b);
            b *= factor;
        }
        Self::new(bounds)
    }

    /// `n` buckets of equal `width` starting at `start + width`.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive `width` or `n == 0`.
    pub fn linear(start: f64, width: f64, n: usize) -> Self {
        assert!(width > 0.0 && n > 0, "invalid buckets");
        Self::new((1..=n).map(|i| start + width * i as f64).collect())
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += value;
        self.count += 1;
    }

    /// Finite bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (last entry is the `+Inf` overflow bucket).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// An empty clone sharing this histogram's bucket layout.
    fn like(&self) -> Self {
        Self::new(self.bounds.clone())
    }
}

/// One concrete time series of a family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Series {
    Counter(u64),
    Gauge(f64),
    Histogram(Histogram),
}

/// A metric family: shared name, help text, kind, and one series per
/// label set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Family {
    help: String,
    kind: MetricKind,
    /// Histogram bucket template for `MetricKind::Histogram` families.
    buckets: Option<Histogram>,
    /// Series keyed by the *rendered* label string (`{k="v",...}` with
    /// keys sorted), which makes ordering deterministic.
    series: BTreeMap<String, Series>,
}

/// The registry: a deterministic map of metric families.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    families: BTreeMap<String, Family>,
}

/// Renders a label set in canonical form: keys sorted, `{k="v",...}`,
/// empty string for no labels.
fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut sorted: Vec<(&str, &str)> = labels.to_vec();
    sorted.sort_unstable();
    let mut out = String::from("{");
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{k}=\"{}\"",
            v.replace('\\', "\\\\").replace('"', "\\\"")
        );
    }
    out.push('}');
    out
}

/// Merges a family-level label string with extra suffix labels (used for
/// histogram `le` buckets).
fn labels_with(rendered: &str, extra: &str) -> String {
    if rendered.is_empty() {
        format!("{{{extra}}}")
    } else {
        format!("{},{extra}}}", &rendered[..rendered.len() - 1])
    }
}

/// Formats an `f64` deterministically for the text exposition (Rust's
/// shortest-roundtrip `Display`, with non-finite values spelled the
/// Prometheus way).
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn declare(&mut self, name: &str, help: &str, kind: MetricKind, buckets: Option<Histogram>) {
        let existing = self.families.get(name);
        if let Some(f) = existing {
            assert!(
                f.kind == kind,
                "metric `{name}` re-declared as {kind:?}, was {:?}",
                f.kind
            );
            return;
        }
        self.families.insert(
            name.to_string(),
            Family {
                help: help.to_string(),
                kind,
                buckets,
                series: BTreeMap::new(),
            },
        );
    }

    /// Declares a counter family (idempotent).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already declared with a different kind.
    pub fn declare_counter(&mut self, name: &str, help: &str) {
        self.declare(name, help, MetricKind::Counter, None);
    }

    /// Declares a gauge family (idempotent).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already declared with a different kind.
    pub fn declare_gauge(&mut self, name: &str, help: &str) {
        self.declare(name, help, MetricKind::Gauge, None);
    }

    /// Declares a histogram family with a fixed bucket layout
    /// (idempotent).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already declared with a different kind.
    pub fn declare_histogram(&mut self, name: &str, help: &str, buckets: Histogram) {
        self.declare(name, help, MetricKind::Histogram, Some(buckets));
    }

    /// Adds `delta` to a counter series (auto-declares the family).
    ///
    /// # Panics
    ///
    /// Panics if `name` names a non-counter family.
    pub fn inc(&mut self, name: &str, labels: &[(&str, &str)], delta: u64) {
        self.declare(name, "", MetricKind::Counter, None);
        let family = self
            .families
            .get_mut(name)
            .unwrap_or_else(|| unreachable!("family declared above"));
        assert!(
            family.kind == MetricKind::Counter,
            "metric `{name}` is not a counter"
        );
        let series = family
            .series
            .entry(render_labels(labels))
            .or_insert(Series::Counter(0));
        match series {
            Series::Counter(v) => *v += delta,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Sets a gauge series to `value` (auto-declares the family).
    ///
    /// # Panics
    ///
    /// Panics if `name` names a non-gauge family.
    pub fn set(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.declare(name, "", MetricKind::Gauge, None);
        let family = self
            .families
            .get_mut(name)
            .unwrap_or_else(|| unreachable!("family declared above"));
        assert!(
            family.kind == MetricKind::Gauge,
            "metric `{name}` is not a gauge"
        );
        family
            .series
            .insert(render_labels(labels), Series::Gauge(value));
    }

    /// Records an observation into a histogram series.
    ///
    /// # Panics
    ///
    /// Panics if `name` was not declared via
    /// [`MetricsRegistry::declare_histogram`] (histograms need a bucket
    /// layout, so auto-declaration is not possible).
    pub fn observe(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        let family = self
            .families
            .get_mut(name)
            .unwrap_or_else(|| panic!("histogram `{name}` must be declared before observing"));
        assert!(
            family.kind == MetricKind::Histogram,
            "metric `{name}` is not a histogram"
        );
        let template = family
            .buckets
            .as_ref()
            .unwrap_or_else(|| unreachable!("histogram families always carry buckets"))
            .like();
        let series = family
            .series
            .entry(render_labels(labels))
            .or_insert(Series::Histogram(template));
        match series {
            Series::Histogram(h) => h.observe(value),
            _ => unreachable!("kind checked above"),
        }
    }

    /// Reads back a counter series (0 if absent).
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        match self
            .families
            .get(name)
            .and_then(|f| f.series.get(&render_labels(labels)))
        {
            Some(Series::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Reads back a gauge series.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self
            .families
            .get(name)
            .and_then(|f| f.series.get(&render_labels(labels)))
        {
            Some(Series::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Reads back a histogram series.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Histogram> {
        match self
            .families
            .get(name)
            .and_then(|f| f.series.get(&render_labels(labels)))
        {
            Some(Series::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Number of declared families.
    pub fn len(&self) -> usize {
        self.families.len()
    }

    /// Whether no family is declared.
    pub fn is_empty(&self) -> bool {
        self.families.is_empty()
    }

    /// Renders the registry in the Prometheus text exposition format
    /// (OpenMetrics-compatible modulo the counter `_total` suffix
    /// convention, which is left to metric naming), terminated by the
    /// OpenMetrics `# EOF` marker. Output is byte-deterministic.
    pub fn to_openmetrics(&self) -> String {
        let mut out = String::new();
        for (name, family) in &self.families {
            if !family.help.is_empty() {
                let _ = writeln!(out, "# HELP {name} {}", family.help);
            }
            let _ = writeln!(out, "# TYPE {name} {}", family.kind.text());
            for (labels, series) in &family.series {
                match series {
                    Series::Counter(v) => {
                        let _ = writeln!(out, "{name}{labels} {v}");
                    }
                    Series::Gauge(v) => {
                        let _ = writeln!(out, "{name}{labels} {}", fmt_f64(*v));
                    }
                    Series::Histogram(h) => {
                        let mut cumulative = 0u64;
                        for (i, c) in h.counts().iter().enumerate() {
                            cumulative += c;
                            let le = if i < h.bounds().len() {
                                fmt_f64(h.bounds()[i])
                            } else {
                                "+Inf".to_string()
                            };
                            let le = format!("le=\"{le}\"");
                            let _ = writeln!(
                                out,
                                "{name}_bucket{} {cumulative}",
                                labels_with(labels, &le)
                            );
                        }
                        let _ = writeln!(out, "{name}_sum{labels} {}", fmt_f64(h.sum()));
                        let _ = writeln!(out, "{name}_count{labels} {}", h.count());
                    }
                }
            }
        }
        out.push_str("# EOF\n");
        out
    }

    /// Renders the registry as a JSON value tree (families → series),
    /// for machine consumption alongside the text exposition.
    pub fn to_json(&self) -> serde::Value {
        let families = self
            .families
            .iter()
            .map(|(name, family)| {
                let series: Vec<serde::Value> = family
                    .series
                    .iter()
                    .map(|(labels, s)| {
                        let mut fields =
                            vec![("labels".to_string(), serde::Value::Str(labels.clone()))];
                        match s {
                            Series::Counter(v) => {
                                fields.push(("value".to_string(), serde::Value::UInt(*v)));
                            }
                            Series::Gauge(v) => {
                                fields.push(("value".to_string(), serde::Value::Float(*v)));
                            }
                            Series::Histogram(h) => {
                                fields.push(("histogram".to_string(), h.serialize_value()));
                            }
                        }
                        serde::Value::Object(fields)
                    })
                    .collect();
                let obj = serde::Value::Object(vec![
                    ("help".to_string(), serde::Value::Str(family.help.clone())),
                    (
                        "kind".to_string(),
                        serde::Value::Str(family.kind.text().to_string()),
                    ),
                    ("series".to_string(), serde::Value::Array(series)),
                ]);
                (name.clone(), obj)
            })
            .collect();
        serde::Value::Object(families)
    }
}

impl serde::Serialize for MetricsRegistry {
    fn serialize_value(&self) -> serde::Value {
        self.to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_export() {
        let mut r = MetricsRegistry::new();
        r.declare_counter("laer_iterations_total", "iterations executed");
        r.inc("laer_iterations_total", &[("system", "laer-moe")], 2);
        r.inc("laer_iterations_total", &[("system", "laer-moe")], 3);
        assert_eq!(
            r.counter_value("laer_iterations_total", &[("system", "laer-moe")]),
            5
        );
        let text = r.to_openmetrics();
        assert!(text.contains("# TYPE laer_iterations_total counter"));
        assert!(text.contains("laer_iterations_total{system=\"laer-moe\"} 5"));
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn gauges_overwrite() {
        let mut r = MetricsRegistry::new();
        r.set("g", &[], 1.5);
        r.set("g", &[], 2.5);
        assert_eq!(r.gauge_value("g", &[]), Some(2.5));
        assert!(r.to_openmetrics().contains("g 2.5"));
    }

    #[test]
    fn label_order_is_canonical() {
        assert_eq!(
            render_labels(&[("b", "2"), ("a", "1")]),
            "{a=\"1\",b=\"2\"}"
        );
        assert_eq!(render_labels(&[]), "");
        // Quotes and backslashes are escaped.
        assert_eq!(render_labels(&[("k", "a\"b")]), "{k=\"a\\\"b\"}");
    }

    #[test]
    fn histogram_buckets_are_cumulative_in_export() {
        let mut r = MetricsRegistry::new();
        r.declare_histogram("h", "test", Histogram::new(vec![1.0, 2.0]));
        for v in [0.5, 1.5, 1.7, 9.0] {
            r.observe("h", &[("s", "x")], v);
        }
        let h = r.histogram("h", &[("s", "x")]).unwrap();
        assert_eq!(h.counts(), &[1, 2, 1]);
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 12.7).abs() < 1e-12);
        let text = r.to_openmetrics();
        assert!(text.contains("h_bucket{s=\"x\",le=\"1\"} 1"));
        assert!(text.contains("h_bucket{s=\"x\",le=\"2\"} 3"));
        assert!(text.contains("h_bucket{s=\"x\",le=\"+Inf\"} 4"));
        assert!(text.contains("h_count{s=\"x\"} 4"));
    }

    #[test]
    fn exponential_and_linear_buckets() {
        let e = Histogram::exponential(1e-3, 2.0, 3);
        assert_eq!(e.bounds(), &[1e-3, 2e-3, 4e-3]);
        let l = Histogram::linear(0.0, 0.5, 2);
        assert_eq!(l.bounds(), &[0.5, 1.0]);
    }

    #[test]
    fn export_is_deterministic() {
        let build = || {
            let mut r = MetricsRegistry::new();
            r.inc("b_total", &[("x", "1")], 1);
            r.set("a_gauge", &[("y", "2")], 0.25);
            r.declare_histogram("c_hist", "h", Histogram::exponential(1e-3, 10.0, 4));
            r.observe("c_hist", &[], 0.02);
            r.to_openmetrics()
        };
        assert_eq!(build(), build());
        // Families render in name order regardless of insertion order.
        let text = build();
        let a = text.find("a_gauge").unwrap();
        let b = text.find("b_total").unwrap();
        assert!(a < b);
    }

    #[test]
    fn json_export_shape() {
        let mut r = MetricsRegistry::new();
        r.inc("c", &[("s", "x")], 7);
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("\"kind\":\"counter\""));
        assert!(json.contains("\"value\":7"));
    }

    #[test]
    #[should_panic(expected = "re-declared")]
    fn kind_mismatch_panics() {
        let mut r = MetricsRegistry::new();
        r.set("m", &[], 1.0);
        r.inc("m", &[], 1);
    }
}
