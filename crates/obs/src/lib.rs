//! Deterministic telemetry for the LAER-MoE reproduction.
//!
//! The paper's whole argument is quantitative — the Eq. 1/2 cost model
//! the planner optimises, Fig. 5's stream overlap, the exposed-
//! communication breakdowns of Figs. 8–12 — so the reproduction carries
//! a first-class telemetry layer instead of ad-hoc printouts:
//!
//! * [`MetricsRegistry`] — typed counters, gauges and fixed-bucket
//!   histograms, exportable as Prometheus/OpenMetrics text and JSON;
//! * [`Journal`] — a structured JSONL event journal with per-iteration
//!   records (stream busy/idle utilisation per device, exposed-vs-
//!   overlapped communication per span label, routing imbalance,
//!   serving queue depth and latency histograms);
//! * [`audit`] — the planner decision audit: every (re-)layout decision
//!   records its trigger reason, the predicted Eq. 1 cost and predicted
//!   per-device load, and is joined with the simulated actuals after
//!   the iteration executes, yielding a prediction-error metric per
//!   system;
//! * [`counters`] — Chrome-trace counter tracks (`ph:"C"`) so queue
//!   depth and per-stream utilisation render alongside the span
//!   timeline in Perfetto;
//! * [`gate`] — a perf-regression gate comparing a run's step times
//!   against a committed `BENCH_obs.json` snapshot with a tolerance;
//! * [`critpath`] — critical-path extraction over the span dependency
//!   DAG an engine records under `record_deps`: blame seconds per
//!   `label × device × stream`, per-span slack, and what-if replays
//!   ("2× A2A bandwidth") without re-simulating;
//! * [`alerts`] — streaming anomaly detectors (EWMA z-score, threshold
//!   rules) over the journal's step telemetry, scored against chaos
//!   fault plans into a time-to-detect / precision / recall scoreboard.
//!
//! # Determinism rules
//!
//! Everything in this crate is a pure function of its inputs:
//!
//! * no wall-clock reads — every timestamp is virtual (simulator)
//!   time supplied by the caller;
//! * no global state — registries, journals and audit logs are plain
//!   values threaded explicitly;
//! * ordered containers only (`BTreeMap`, sorted label sets), so text
//!   and JSON exports are byte-identical across runs of the same
//!   seeded experiment — the property the regression gate and the
//!   golden trace tests rely on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod alerts;
pub mod audit;
pub mod counters;
pub mod critpath;
pub mod gate;
pub mod journal;
pub mod registry;

pub use alerts::{
    score_alerts, Alert, EwmaDetector, FaultWindow, ScoreRow, Scoreboard, ThresholdRule,
};
pub use audit::{AuditLog, AuditRecord, AuditSummary, PlanAudit};
pub use counters::{queue_depth_track, stream_utilization_tracks};
pub use critpath::{
    critical_path, standard_what_ifs, what_if, BlameEntry, CritPathRecord, CritPathReport,
    CritSegment, WhatIf,
};
pub use gate::{gate_snapshots, BenchSnapshot, GateCheck, GateReport, GateStatus, SnapshotRow};
pub use journal::{
    ChunkOverlap, CommOverlap, HistogramSnapshot, IterationRecord, Journal, ResilienceRecord,
    RlEpochRecord, ServeStepRecord, ServingRecord, StreamUtilization,
};
pub use registry::{Histogram, MetricKind, MetricsRegistry};

/// The bundled telemetry of one run: a metrics registry, an event
/// journal and a planner decision audit log, threaded together through
/// the training/serving drivers.
#[derive(Debug, Clone, Default)]
pub struct Observer {
    /// Aggregated metrics (OpenMetrics/JSON export).
    pub registry: MetricsRegistry,
    /// Structured per-iteration / per-decision event journal (JSONL).
    pub journal: Journal,
    /// Planner decision audit records.
    pub audit: AuditLog,
}

impl Observer {
    /// Creates an empty observer.
    pub fn new() -> Self {
        Self::default()
    }
}
