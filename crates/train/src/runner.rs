//! The experiment driver.

use laer_baselines::{
    predicted_bottleneck_device, FasterMoeSystem, FlexMoeSystem, FsdpEpSystem, LaerSystem,
    MegatronSystem, MoeSystem, SmartMoeSystem, SystemContext, SystemKind, VanillaEpSystem,
};
use laer_cluster::Topology;
use laer_fsep::{schedule_iteration, LayerTimings};
use laer_model::{GpuSpec, ModelPreset};
use laer_obs::{
    critpath, journal, AuditRecord, BlameEntry, CritPathRecord, Histogram, Observer, WhatIf,
};
use laer_routing::{DatasetProfile, RoutingGenerator, RoutingGeneratorConfig, RoutingMatrix};
use laer_sim::{Breakdown, Engine, EngineOptions, Timeline};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Configuration of one end-to-end experiment (one bar of Fig. 8, one
/// stack of Fig. 10a, ...).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Model architecture.
    pub preset: ModelPreset,
    /// System under test.
    pub system: SystemKind,
    /// Dataset skew profile.
    pub dataset: DatasetProfile,
    /// Auxiliary-loss weight (affects routing balance).
    pub aux_loss_weight: f64,
    /// Cluster nodes.
    pub nodes: usize,
    /// Devices per node.
    pub devices_per_node: usize,
    /// Measured iterations (after warmup).
    pub iterations: usize,
    /// Warmup iterations excluded from averages (the paper uses 20).
    pub warmup: usize,
    /// MoE layers simulated (defaults to the model's layer count; reduce
    /// for fast tests).
    pub layers: usize,
    /// Tokens per device per iteration `S` (the paper's 16 K operating
    /// point).
    pub tokens_per_device: u64,
    /// Sequence length (8 K in the end-to-end runs).
    pub seq_len: usize,
    /// Trace seed.
    pub seed: u64,
    /// Chunk count of the executor's chunked dispatch/combine pipeline
    /// (`0` and `1` both mean the whole-iteration schedule; `0` is the
    /// serde default so configs serialized before the knob existed keep
    /// their meaning).
    #[serde(default)]
    pub num_chunks: usize,
    /// Record the span dependency DAG for critical-path diagnosis
    /// ([`laer_sim::EngineOptions::record_deps`]). Off by default: the
    /// engine hot path and every pre-existing artifact are unchanged.
    /// When on, each measured iteration additionally journals a
    /// `critpath` event and [`run_experiment_diagnosed`] returns the
    /// aggregated [`TrainDiagnosis`].
    #[serde(default)]
    pub record_deps: bool,
}

impl ExperimentConfig {
    /// Creates the paper's default configuration: 4×8 cluster, 8 K
    /// context, 16 K tokens/device, wikitext profile, aux weight 0,
    /// 20 warmup + 50 measured iterations.
    pub fn new(preset: ModelPreset, system: SystemKind) -> Self {
        let layers = preset.config().layers();
        Self {
            preset,
            system,
            dataset: DatasetProfile::Wikitext,
            aux_loss_weight: 0.0,
            nodes: 4,
            devices_per_node: 8,
            iterations: 50,
            warmup: 20,
            layers,
            tokens_per_device: 16 * 1024,
            seq_len: 8192,
            seed: 0,
            num_chunks: 0,
            record_deps: false,
        }
    }

    /// Overrides measured and warmup iteration counts.
    pub fn with_iterations(mut self, iterations: usize, warmup: usize) -> Self {
        self.iterations = iterations;
        self.warmup = warmup;
        self
    }

    /// Overrides the simulated layer count.
    pub fn with_layers(mut self, layers: usize) -> Self {
        self.layers = layers;
        self
    }

    /// Overrides the dataset profile.
    pub fn with_dataset(mut self, dataset: DatasetProfile) -> Self {
        self.dataset = dataset;
        self
    }

    /// Overrides the auxiliary-loss weight.
    pub fn with_aux_loss(mut self, weight: f64) -> Self {
        self.aux_loss_weight = weight;
        self
    }

    /// Overrides the cluster shape.
    pub fn with_cluster(mut self, nodes: usize, devices_per_node: usize) -> Self {
        self.nodes = nodes;
        self.devices_per_node = devices_per_node;
        self
    }

    /// Overrides the trace seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the executor's pipeline chunk count (clamped to at
    /// least 1). The knob reaches both the schedule (per-chunk A2A and
    /// compute spans) and, for the LAER system, the planner's pipelined
    /// Eq. 1 pricing.
    pub fn with_num_chunks(mut self, num_chunks: usize) -> Self {
        self.num_chunks = num_chunks.max(1);
        self
    }

    /// Enables (or disables) span dependency recording for critical-path
    /// diagnosis.
    pub fn with_record_deps(mut self, record_deps: bool) -> Self {
        self.record_deps = record_deps;
        self
    }

    /// The cluster topology of this experiment.
    ///
    /// # Panics
    ///
    /// Panics if the configured cluster shape is empty.
    pub fn topology(&self) -> Topology {
        Topology::new(self.nodes, self.devices_per_node)
            .unwrap_or_else(|e| panic!("invalid cluster shape: {e}"))
    }

    /// The system context of this experiment.
    pub fn context(&self) -> SystemContext {
        SystemContext::new(
            self.topology(),
            self.preset.config(),
            GpuSpec::a100(),
            self.tokens_per_device,
            self.seq_len,
        )
    }

    pub(crate) fn build_system(&self) -> Box<dyn MoeSystem> {
        let ctx = self.context();
        match self.system {
            SystemKind::Laer => {
                let sys = LaerSystem::new(ctx);
                // Chunked pipelining reaches the LAER planner's pricing
                // too; the other systems only chunk their schedules (via
                // the runner's ScheduleOptions override below).
                Box::new(if self.num_chunks > 0 {
                    sys.with_num_chunks(self.num_chunks)
                } else {
                    sys
                })
            }
            SystemKind::Flex => Box::new(FlexMoeSystem::new(ctx, self.layers)),
            SystemKind::FsdpEp => Box::new(FsdpEpSystem::new(ctx)),
            SystemKind::Megatron => Box::new(MegatronSystem::new(ctx)),
            SystemKind::VanillaEp => Box::new(VanillaEpSystem::new(ctx)),
            SystemKind::SmartMoe => Box::new(SmartMoeSystem::new(ctx, self.layers, 100)),
            SystemKind::FasterMoe => Box::new(FasterMoeSystem::new(ctx, 1)),
        }
    }

    /// The routing-generator configuration behind layer `layer`'s
    /// synthetic trace. Public so other drivers can continue the same
    /// popularity process: the serving extension resumes this exact
    /// config mid-stream (via `RoutingGenerator::starting_at`) to model
    /// inference traffic whose expert-popularity drift picks up where a
    /// training run stopped.
    pub fn routing_config(&self, layer: usize) -> RoutingGeneratorConfig {
        let n = self.nodes * self.devices_per_node;
        let cfg = self.preset.config();
        let assignments = self.tokens_per_device * cfg.top_k() as u64;
        RoutingGeneratorConfig::new(n, cfg.experts(), assignments)
            .with_profile(self.dataset)
            .with_aux_loss(self.aux_loss_weight)
            // Distinct hot experts per layer (Sec. 7: "heavy experts
            // often differ from one layer to the next").
            .with_seed(self.seed.wrapping_add(1 + layer as u64))
    }

    pub(crate) fn layer_generators(&self) -> Vec<RoutingGenerator> {
        (0..self.layers)
            .map(|l| RoutingGenerator::new(self.routing_config(l)))
            .collect()
    }
}

/// Aggregated output of one experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// System name.
    pub system: String,
    /// Average measured iteration seconds.
    pub avg_iteration_time: f64,
    /// Global training throughput in tokens/second (the Fig. 8 metric).
    pub tokens_per_second: f64,
    /// Average per-device time breakdown (Figs. 1b / 10a).
    pub breakdown: Breakdown,
    /// Mean over iterations of the per-layer max-token/ideal ratio
    /// (Fig. 10b).
    pub avg_max_token_ratio: f64,
    /// Measured per-iteration times, seconds.
    pub iteration_times: Vec<f64>,
}

/// Aggregated critical-path diagnosis of one training run (requires
/// [`ExperimentConfig::record_deps`]): the Eq.-1-vs-critical-path
/// bottleneck agreement, blame seconds summed over measured iterations,
/// and the last iteration's what-if scenarios and path edges.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainDiagnosis {
    /// System under test.
    pub system: String,
    /// Measured iterations diagnosed.
    pub iterations: u64,
    /// Iterations where Eq. 1's predicted bottleneck device equals the
    /// critical-path device.
    pub agreements: u64,
    /// `agreements / iterations`.
    pub agreement_rate: f64,
    /// Mean unattributed seconds per iteration.
    pub mean_residual: f64,
    /// Blame seconds per `label × device × stream`, summed over
    /// measured iterations, sorted by descending seconds.
    pub blame: Vec<BlameEntry>,
    /// What-if scenarios replayed on the last measured iteration's DAG.
    pub what_ifs: Vec<WhatIf>,
    /// The last measured iteration's critical-path edges (`(src, dst)`
    /// span-index pairs), for the flow-event Chrome export.
    pub critical_edges: Vec<(usize, usize)>,
}

/// Runs one experiment end to end with synthetic per-layer traces.
///
/// # Panics
///
/// Panics if the configuration is degenerate (zero layers/iterations).
pub fn run_experiment(cfg: &ExperimentConfig) -> ExperimentResult {
    let mut gens = cfg.layer_generators();
    run_with_demands(cfg, |l, _| gens[l].next_iteration())
}

/// [`run_experiment`] plus a telemetry sink: every measured iteration
/// appends an `iteration` journal event (step time, per-stream
/// utilization, exposed-vs-overlapped communication, routing imbalance),
/// every layer decision joins the system's planning-time belief with the
/// simulated actuals into the decision audit, and headline numbers land
/// in the metrics registry. Returns the result together with the last
/// measured iteration's [`Timeline`] so callers can render a Chrome
/// trace with counter tracks.
///
/// # Panics
///
/// Panics if the configuration is degenerate (zero layers/iterations).
pub fn run_experiment_observed(
    cfg: &ExperimentConfig,
    obs: &mut Observer,
) -> (ExperimentResult, Timeline) {
    let mut gens = cfg.layer_generators();
    let (result, timeline, _) =
        run_with_demands_observed(cfg, |l, _| gens[l].next_iteration(), Some(obs));
    (
        result,
        timeline.unwrap_or_else(|| unreachable!("observed runs capture a timeline")),
    )
}

/// [`run_experiment_observed`] plus the critical-path diagnosis layer:
/// the engine records the span dependency DAG, every measured iteration
/// journals a `critpath` event (blame headline, Eq.-1-vs-actual
/// bottleneck agreement), and the aggregated [`TrainDiagnosis`] is
/// returned alongside the result and last timeline.
///
/// # Panics
///
/// Panics if `cfg.record_deps` is off or the configuration is
/// degenerate (zero layers/iterations).
pub fn run_experiment_diagnosed(
    cfg: &ExperimentConfig,
    obs: &mut Observer,
) -> (ExperimentResult, Timeline, TrainDiagnosis) {
    assert!(
        cfg.record_deps,
        "run_experiment_diagnosed requires cfg.record_deps"
    );
    let mut gens = cfg.layer_generators();
    let (result, timeline, diagnosis) =
        run_with_demands_observed(cfg, |l, _| gens[l].next_iteration(), Some(obs));
    (
        result,
        timeline.unwrap_or_else(|| unreachable!("observed runs capture a timeline")),
        diagnosis.unwrap_or_else(|| unreachable!("record_deps runs produce a diagnosis")),
    )
}

/// Runs one experiment by *replaying* a recorded routing trace: every
/// layer of iteration `i` consumes the trace's matrix `i` (Appendix D's
/// trace-driven methodology). Iterations beyond the trace wrap around.
///
/// # Panics
///
/// Panics if the trace is empty or its shape disagrees with the
/// configuration's cluster and model.
pub fn run_experiment_on_trace(
    cfg: &ExperimentConfig,
    trace: &laer_routing::RoutingTrace,
) -> ExperimentResult {
    let Some(first) = trace.get(0) else {
        panic!("trace must contain iterations");
    };
    assert_eq!(
        first.num_devices(),
        cfg.nodes * cfg.devices_per_node,
        "trace device count"
    );
    assert_eq!(
        first.num_experts(),
        cfg.preset.config().experts(),
        "trace expert count"
    );
    run_with_demands(cfg, |_, iter| {
        trace
            .get(iter as usize % trace.len())
            .unwrap_or_else(|| unreachable!("wrapped index in range"))
            .clone()
    })
}

fn run_with_demands(
    cfg: &ExperimentConfig,
    demand_for: impl FnMut(usize, u64) -> RoutingMatrix,
) -> ExperimentResult {
    run_with_demands_observed(cfg, demand_for, None).0
}

/// Blame accumulator keyed by `(label, device, stream)`, merged across
/// iterations and re-sorted like [`laer_obs::CritPathReport::blame`].
fn merge_blame(acc: &mut BTreeMap<(String, usize, String), f64>, blame: &[BlameEntry]) {
    for b in blame {
        *acc.entry((b.label.clone(), b.device, b.stream.clone()))
            .or_insert(0.0) += b.seconds;
    }
}

fn sorted_blame(acc: BTreeMap<(String, usize, String), f64>) -> Vec<BlameEntry> {
    let mut blame: Vec<BlameEntry> = acc
        .into_iter()
        .map(|((label, device, stream), seconds)| BlameEntry {
            label,
            device,
            stream,
            seconds,
        })
        .collect();
    blame.sort_by(|a, b| {
        b.seconds
            .total_cmp(&a.seconds)
            .then_with(|| a.label.cmp(&b.label))
            .then_with(|| a.device.cmp(&b.device))
            .then_with(|| a.stream.cmp(&b.stream))
    });
    blame
}

/// Registry families the observed runner populates (documented on
/// [`run_experiment_observed`]'s export side in `DESIGN.md` §8).
fn declare_train_metrics(obs: &mut Observer) {
    obs.registry.declare_counter(
        "laer_train_iterations_total",
        "measured iterations executed",
    );
    obs.registry.declare_counter(
        "laer_plan_decisions_total",
        "layer (re-)layout decisions by trigger",
    );
    obs.registry.declare_histogram(
        "laer_train_step_seconds",
        "simulated iteration time",
        Histogram::exponential(5e-3, 2.0, 12),
    );
    obs.registry.declare_gauge(
        "laer_train_avg_step_seconds",
        "average measured iteration time",
    );
    obs.registry
        .declare_gauge("laer_train_tokens_per_second", "global training throughput");
    obs.registry.declare_gauge(
        "laer_plan_mean_abs_rel_error",
        "mean |predicted-actual|/actual of the Eq. 1 decision audit",
    );
}

fn run_with_demands_observed(
    cfg: &ExperimentConfig,
    mut demand_for: impl FnMut(usize, u64) -> RoutingMatrix,
    mut obs: Option<&mut Observer>,
) -> (ExperimentResult, Option<Timeline>, Option<TrainDiagnosis>) {
    assert!(cfg.layers > 0, "at least one layer");
    assert!(cfg.iterations > 0, "at least one measured iteration");
    let topo = cfg.topology();
    let n = topo.num_devices();
    let mut system = cfg.build_system();
    let name = system.name();
    let mut opts = system.schedule_options();
    if cfg.num_chunks > 0 {
        opts = opts.with_num_chunks(cfg.num_chunks);
    }
    if let Some(o) = obs.as_deref_mut() {
        declare_train_metrics(o);
        if cfg.record_deps {
            o.registry.declare_gauge(
                "laer_critpath_agreement_rate",
                "fraction of iterations where Eq. 1's bottleneck device matches the critical path",
            );
        }
    }

    let mut iteration_times = Vec::with_capacity(cfg.iterations);
    let mut breakdown_acc = Breakdown::default();
    let mut ratio_acc = 0.0f64;
    let mut ratio_count = 0usize;
    let mut last_timeline = None;
    let mut diag_agreements = 0u64;
    let mut diag_iterations = 0u64;
    let mut diag_residual = 0.0f64;
    let mut diag_blame: BTreeMap<(String, usize, String), f64> = BTreeMap::new();
    let mut diag_what_ifs: Vec<WhatIf> = Vec::new();
    let mut diag_edges: Vec<(usize, usize)> = Vec::new();

    let total_iters = cfg.warmup + cfg.iterations;
    for iter in 0..total_iters {
        let measured = iter >= cfg.warmup;
        let mut iter_ratio = 0.0f64;
        let mut layer_timings: Vec<LayerTimings> = Vec::with_capacity(cfg.layers);
        let mut iter_loads: Vec<Vec<u64>> = Vec::new();
        for l in 0..cfg.layers {
            let demand = demand_for(l, iter as u64);
            let plan = system.plan_layer(l, iter as u64, &demand);
            let ratio = plan.max_token_ratio();
            iter_ratio += ratio;
            if measured {
                ratio_acc += ratio;
                ratio_count += 1;
            }
            if cfg.record_deps && measured {
                iter_loads.push(plan.audit.predicted_loads.clone());
            }
            if let Some(o) = obs.as_deref_mut() {
                // Join the decision's belief with what the executor was
                // actually charged: the layer's four A2A passes are the
                // dispatch + combine stragglers twice (forward and
                // backward), expert compute is the forward straggler
                // times the schedule's roundtrip factor.
                let max = |v: &[f64]| v.iter().copied().fold(0.0, f64::max);
                o.audit.push(AuditRecord {
                    system: name.to_string(),
                    iteration: iter as u64,
                    layer: l,
                    trigger: plan.audit.trigger.clone(),
                    predicted_comm: plan.audit.predicted_comm,
                    predicted_comp: plan.audit.predicted_comp,
                    actual_comm: 2.0 * max(&plan.timings.dispatch)
                        + 2.0 * max(&plan.timings.combine),
                    actual_comp: opts.expert_roundtrip_factor() * max(&plan.timings.expert_forward),
                    actual_imbalance: ratio,
                });
                o.registry.inc(
                    "laer_plan_decisions_total",
                    &[("system", name), ("trigger", &plan.audit.trigger)],
                    1,
                );
            }
            layer_timings.push(plan.timings);
        }
        let mut engine = Engine::with_options(
            &topo,
            EngineOptions {
                record_deps: cfg.record_deps,
            },
        );
        let t = schedule_iteration(&mut engine, &topo, &layer_timings, opts);
        if measured {
            iteration_times.push(t.total);
            breakdown_acc.accumulate(&engine.timeline().breakdown(n));
            if let Some(o) = obs.as_deref_mut() {
                let record = journal::iteration_record(
                    name,
                    iter as u64,
                    t.total,
                    iter_ratio / cfg.layers as f64,
                    engine.timeline(),
                    n,
                    opts.effective_chunks(),
                );
                o.journal.push("iteration", &record);
                o.registry
                    .inc("laer_train_iterations_total", &[("system", name)], 1);
                o.registry
                    .observe("laer_train_step_seconds", &[("system", name)], t.total);
                if cfg.record_deps {
                    let report = critpath::critical_path(engine.timeline())
                        .unwrap_or_else(|| unreachable!("recording engine has a dep log"));
                    let critical_device = report.critical_device().unwrap_or(0);
                    let predicted_device = predicted_bottleneck_device(&iter_loads).unwrap_or(0);
                    let agree = critical_device == predicted_device;
                    o.journal.push(
                        "critpath",
                        &CritPathRecord {
                            system: name.to_string(),
                            iteration: iter as u64,
                            makespan: report.makespan,
                            residual: report.residual,
                            critical_device,
                            predicted_device,
                            agree,
                            top_blame: report.top_blame(3).to_vec(),
                        },
                    );
                    diag_iterations += 1;
                    diag_agreements += u64::from(agree);
                    diag_residual += report.residual;
                    merge_blame(&mut diag_blame, &report.blame);
                    if iter + 1 == total_iters {
                        diag_edges = report.edges();
                        diag_what_ifs = critpath::standard_what_ifs(engine.timeline())
                            .unwrap_or_else(|| unreachable!("recording engine has a dep log"));
                    }
                }
                if iter + 1 == total_iters {
                    last_timeline = Some(engine.timeline().clone());
                }
            }
        }
    }

    let avg_iteration_time = iteration_times.iter().sum::<f64>() / iteration_times.len() as f64;
    let global_tokens = n as u64 * cfg.tokens_per_device;
    let diagnosis = (cfg.record_deps && diag_iterations > 0).then(|| TrainDiagnosis {
        system: name.to_string(),
        iterations: diag_iterations,
        agreements: diag_agreements,
        agreement_rate: diag_agreements as f64 / diag_iterations as f64,
        mean_residual: diag_residual / diag_iterations as f64,
        blame: sorted_blame(diag_blame),
        what_ifs: diag_what_ifs,
        critical_edges: diag_edges,
    });
    if let Some(o) = obs {
        o.registry.set(
            "laer_train_avg_step_seconds",
            &[("system", name)],
            avg_iteration_time,
        );
        o.registry.set(
            "laer_train_tokens_per_second",
            &[("system", name)],
            global_tokens as f64 / avg_iteration_time,
        );
        if let Some(summary) = o.audit.summary(name) {
            o.registry.set(
                "laer_plan_mean_abs_rel_error",
                &[("system", name)],
                summary.mean_abs_rel_error,
            );
        }
        if let Some(d) = &diagnosis {
            o.registry.set(
                "laer_critpath_agreement_rate",
                &[("system", name)],
                d.agreement_rate,
            );
        }
    }
    let result = ExperimentResult {
        system: name.to_string(),
        avg_iteration_time,
        tokens_per_second: global_tokens as f64 / avg_iteration_time,
        breakdown: breakdown_acc.scale(1.0 / cfg.iterations as f64),
        avg_max_token_ratio: ratio_acc / ratio_count as f64,
        iteration_times,
    };
    (result, last_timeline, diagnosis)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(system: SystemKind) -> ExperimentConfig {
        ExperimentConfig::new(ModelPreset::Mixtral8x7bE8k2, system)
            .with_iterations(6, 2)
            .with_layers(4)
            .with_seed(3)
    }

    #[test]
    fn experiment_produces_sane_numbers() {
        let r = run_experiment(&quick(SystemKind::FsdpEp));
        assert!(r.avg_iteration_time > 0.0);
        assert!(r.tokens_per_second > 0.0);
        assert_eq!(r.iteration_times.len(), 6);
        assert!(r.avg_max_token_ratio >= 1.0);
        assert!(r.breakdown.expert_compute > 0.0);
    }

    /// The headline end-to-end ordering on a skewed trace: LAER faster
    /// than FSDP+EP, which resembles FlexMoE-or-better vs the static
    /// baselines.
    #[test]
    fn laer_outperforms_static_baseline() {
        let laer = run_experiment(&quick(SystemKind::Laer));
        let fsdp = run_experiment(&quick(SystemKind::FsdpEp));
        assert!(
            laer.tokens_per_second > fsdp.tokens_per_second,
            "LAER {} <= FSDP+EP {}",
            laer.tokens_per_second,
            fsdp.tokens_per_second
        );
        assert!(laer.avg_max_token_ratio < fsdp.avg_max_token_ratio);
    }

    /// Fig. 1(b): with imbalanced routing the A2A share of the
    /// unoptimized EP baseline is large; enforcing balanced routing
    /// (high aux weight) collapses it.
    #[test]
    fn a2a_share_tracks_imbalance() {
        let skew = run_experiment(&quick(SystemKind::VanillaEp));
        let balanced = run_experiment(&quick(SystemKind::VanillaEp).with_aux_loss(1.0));
        assert!(
            skew.breakdown.a2a_fraction() > balanced.breakdown.a2a_fraction() * 1.5,
            "skewed {:.3} vs balanced {:.3}",
            skew.breakdown.a2a_fraction(),
            balanced.breakdown.a2a_fraction()
        );
    }

    #[test]
    fn deterministic_runs() {
        let a = run_experiment(&quick(SystemKind::Laer));
        let b = run_experiment(&quick(SystemKind::Laer));
        assert_eq!(a.iteration_times, b.iteration_times);
    }

    /// The pipeline knob: one chunk is bit-identical to the default
    /// (whole-iteration) run, and chunking never slows an iteration.
    #[test]
    fn chunked_run_matches_then_beats_whole_iteration() {
        for system in [SystemKind::VanillaEp, SystemKind::Laer] {
            let whole = run_experiment(&quick(system));
            let one = run_experiment(&quick(system).with_num_chunks(1));
            assert_eq!(
                whole.iteration_times, one.iteration_times,
                "{system:?}: one chunk must reproduce the whole-iteration schedule"
            );
            let chunked = run_experiment(&quick(system).with_num_chunks(4));
            assert!(
                chunked.avg_iteration_time <= whole.avg_iteration_time + 1e-12,
                "{system:?}: chunking must not slow the step: {} vs {}",
                chunked.avg_iteration_time,
                whole.avg_iteration_time
            );
        }
        // On the skewed static-EP baseline the A2A is material, so
        // 4-way chunking must strictly help.
        let whole = run_experiment(&quick(SystemKind::VanillaEp));
        let chunked = run_experiment(&quick(SystemKind::VanillaEp).with_num_chunks(4));
        assert!(
            chunked.avg_iteration_time < whole.avg_iteration_time,
            "chunking should shorten the skewed EP step: {} vs {}",
            chunked.avg_iteration_time,
            whole.avg_iteration_time
        );
    }

    /// The diagnosis layer: recording the DAG does not change any
    /// simulated time, the critpath journal events appear once per
    /// measured iteration, and the diagnosis aggregates cover the run.
    #[test]
    fn diagnosed_run_matches_and_reports() {
        let plain = run_experiment(&quick(SystemKind::Laer));
        let mut obs = Observer::new();
        let cfg = quick(SystemKind::Laer).with_record_deps(true);
        let (diagnosed, timeline, diag) = run_experiment_diagnosed(&cfg, &mut obs);
        assert_eq!(
            plain.iteration_times, diagnosed.iteration_times,
            "recording must not perturb the schedule"
        );
        assert!(
            timeline.dep_log().is_some(),
            "last timeline carries the DAG"
        );
        assert_eq!(diag.iterations, cfg.iterations as u64);
        assert!(diag.agreement_rate >= 0.0 && diag.agreement_rate <= 1.0);
        assert!(!diag.blame.is_empty());
        assert_eq!(diag.what_ifs.len(), 4);
        assert!(!diag.critical_edges.is_empty());
        // Blame is sorted descending.
        for w in diag.blame.windows(2) {
            assert!(w[0].seconds >= w[1].seconds);
        }
        let critpath_events = obs
            .journal
            .to_jsonl()
            .lines()
            .filter(|l| l.starts_with("{\"type\":\"critpath\""))
            .count();
        assert_eq!(critpath_events, cfg.iterations);
        // Off by default: the observed runner journals no critpath events.
        let mut plain_obs = Observer::new();
        let (_, t) = run_experiment_observed(&quick(SystemKind::Laer), &mut plain_obs);
        assert!(t.dep_log().is_none());
        assert!(!plain_obs.journal.to_jsonl().contains("\"critpath\""));
    }

    /// Trace replay: running on a recorded trace is valid and, with a
    /// stateless system and a single layer, reproduces the same kind of
    /// numbers as a live generator of the same seed.
    #[test]
    fn trace_replay_runs_and_wraps() {
        use laer_routing::{RoutingGeneratorConfig, RoutingTrace};
        let cfg = quick(SystemKind::FsdpEp).with_layers(1);
        let model = cfg.preset.config();
        let trace = RoutingTrace::record(
            RoutingGeneratorConfig::new(
                32,
                model.experts(),
                cfg.tokens_per_device * model.top_k() as u64,
            )
            .with_seed(3),
            4, // shorter than warmup+iterations: exercises wrap-around
        );
        let r = run_experiment_on_trace(&cfg, &trace);
        assert!(r.tokens_per_second > 0.0);
        assert_eq!(r.iteration_times.len(), cfg.iterations);
    }

    #[test]
    #[should_panic(expected = "trace device count")]
    fn trace_shape_mismatch_panics() {
        use laer_routing::{RoutingGeneratorConfig, RoutingTrace};
        let cfg = quick(SystemKind::FsdpEp);
        let trace = RoutingTrace::record(RoutingGeneratorConfig::new(8, 8, 64).with_seed(1), 2);
        let _ = run_experiment_on_trace(&cfg, &trace);
    }
}
