//! RL post-training workload with routing-replay foresight.
//!
//! RL post-training alternates **rollout** phases (generation over a
//! batch of prompts) with **train** phases that re-visit exactly those
//! prompts — so the routing demand of a train phase is *replayable*
//! from traces recorded during rollout (ReLibra, "Harnessing Routing
//! Foresight"). This driver runs that loop against the LAER system:
//!
//! * each epoch's rollout phase records one [`RoutingTrace`] per MoE
//!   layer from the live popularity process (which keeps drifting
//!   across epochs as the policy updates);
//! * the train phase replays the recorded demands, with the layout
//!   tuner driven either by the paper's stale EMA
//!   ([`PredictorKind::Ema`]) or by the recorded trace itself
//!   ([`PredictorKind::Replay`] via [`LaerSystem::install_replay`]);
//! * per-epoch journal/audit records make the foresight-vs-EMA
//!   prediction error visible per predictor mode in
//!   [`laer_obs::AuditSummary`].
//!
//! Knobs model the ways replay foresight degrades in practice:
//! `replay_noise` perturbs the served predictions (rollout→train policy
//! mismatch), `drift` widens the popularity shift *between* epochs
//! (stressing the EMA at epoch boundaries), and `replay_shuffle`
//! permutes the train phase's visit order (the permutation is
//! prompt-keyed, so a recorded trace shuffles with it and foresight
//! survives).

use crate::runner::ExperimentConfig;
use laer_baselines::{LaerSystem, MoeSystem, SystemContext, SystemKind};
use laer_fsep::{schedule_iteration, LayerTimings};
use laer_model::ModelPreset;
use laer_obs::{journal, AuditRecord, Observer, RlEpochRecord};
use laer_planner::{relocation_moves, ExpertLayout, PredictorKind};
use laer_routing::{DatasetProfile, RoutingMatrix, RoutingTrace, TraceMeta};
use laer_sim::{Engine, Timeline};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of one RL post-training run (LAER system only — the
/// predictor seam under test lives in its layout tuner).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RlConfig {
    /// Model architecture.
    pub preset: ModelPreset,
    /// Dataset skew profile of the prompt distribution.
    pub dataset: DatasetProfile,
    /// Auxiliary-loss weight (affects routing balance).
    pub aux_loss_weight: f64,
    /// Cluster nodes.
    pub nodes: usize,
    /// Devices per node.
    pub devices_per_node: usize,
    /// MoE layers simulated.
    pub layers: usize,
    /// Tokens per device per iteration `S`.
    pub tokens_per_device: u64,
    /// Sequence length.
    pub seq_len: usize,
    /// Seed of the demand process, the shuffle and the noise streams.
    pub seed: u64,
    /// Executor pipeline chunk count (0/1 = whole-iteration schedule).
    #[serde(default)]
    pub num_chunks: usize,
    /// Rollout→train epochs to run.
    pub epochs: usize,
    /// Prompts recorded per rollout phase = iterations replayed per
    /// train phase.
    pub rollouts_per_epoch: usize,
    /// Whether the train phase visits the rollout buffer in a seeded
    /// shuffled order (the recorded trace shuffles with it).
    pub replay_shuffle: bool,
    /// Between-epoch popularity drift in [0, 1]: the fraction of an
    /// extra epoch the demand process advances while the policy
    /// updates. 0 leaves only the process's natural drift.
    pub drift: f64,
    /// Which predictor drives the layout tuner during train phases.
    pub predictor: PredictorKind,
    /// Replay mismatch noise in [0, 1] (0 = verbatim foresight); only
    /// meaningful with [`PredictorKind::Replay`].
    pub replay_noise: f64,
}

impl RlConfig {
    /// Defaults: 4×8 cluster, wikitext prompts, 3 epochs × 10 rollouts,
    /// in-order replay, no extra drift, EMA predictor.
    pub fn new(preset: ModelPreset) -> Self {
        let layers = preset.config().layers();
        Self {
            preset,
            dataset: DatasetProfile::Wikitext,
            aux_loss_weight: 0.0,
            nodes: 4,
            devices_per_node: 8,
            layers,
            tokens_per_device: 16 * 1024,
            seq_len: 8192,
            seed: 0,
            num_chunks: 0,
            epochs: 3,
            rollouts_per_epoch: 10,
            replay_shuffle: false,
            drift: 0.0,
            predictor: PredictorKind::Ema,
            replay_noise: 0.0,
        }
    }

    /// Overrides the simulated layer count.
    pub fn with_layers(mut self, layers: usize) -> Self {
        self.layers = layers;
        self
    }

    /// Overrides the cluster shape.
    pub fn with_cluster(mut self, nodes: usize, devices_per_node: usize) -> Self {
        self.nodes = nodes;
        self.devices_per_node = devices_per_node;
        self
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the epoch count.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Overrides the rollouts recorded (= iterations replayed) per epoch.
    pub fn with_rollouts(mut self, rollouts: usize) -> Self {
        self.rollouts_per_epoch = rollouts;
        self
    }

    /// Selects the train-phase predictor.
    pub fn with_predictor(mut self, predictor: PredictorKind) -> Self {
        self.predictor = predictor;
        self
    }

    /// Sets the replay mismatch noise (0 = verbatim foresight).
    pub fn with_replay_noise(mut self, noise: f64) -> Self {
        self.replay_noise = noise;
        self
    }

    /// Sets the between-epoch popularity drift.
    pub fn with_drift(mut self, drift: f64) -> Self {
        self.drift = drift;
        self
    }

    /// Enables/disables the seeded train-order shuffle.
    pub fn with_shuffle(mut self, shuffle: bool) -> Self {
        self.replay_shuffle = shuffle;
        self
    }

    /// Mode-qualified system label, e.g. `laer-moe[replay]` — keyed
    /// into the audit log so [`laer_obs::AuditSummary`] separates
    /// predictor modes.
    pub fn system_label(&self) -> String {
        format!("laer-moe[{}]", self.predictor.id())
    }

    /// The equivalent training-runner configuration (topology, context
    /// and per-layer demand process are shared with the pre-training
    /// driver so RL numbers are comparable).
    fn base(&self) -> ExperimentConfig {
        ExperimentConfig::new(self.preset, SystemKind::Laer)
            .with_dataset(self.dataset)
            .with_aux_loss(self.aux_loss_weight)
            .with_cluster(self.nodes, self.devices_per_node)
            .with_layers(self.layers)
            .with_seed(self.seed)
            .with_iterations(self.epochs * self.rollouts_per_epoch, 0)
    }

    fn context(&self) -> SystemContext {
        let mut base = self.base();
        base.tokens_per_device = self.tokens_per_device;
        base.seq_len = self.seq_len;
        base.context()
    }
}

/// One epoch's headline outcomes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RlEpochReport {
    /// Epoch index.
    pub epoch: usize,
    /// Average train-phase step time, seconds.
    pub avg_step_time: f64,
    /// Mean |predicted-actual|/actual over this epoch's plan decisions.
    pub audit_mean_abs_rel_error: f64,
    /// Expert-weight relocations executed between consecutive layouts.
    pub relocation_moves: u64,
}

/// Aggregated output of one RL post-training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RlResult {
    /// Mode-qualified system label (`laer-moe[ema]` / `laer-moe[replay]`).
    pub system: String,
    /// Predictor mode id (`ema` / `replay`).
    pub mode: String,
    /// Per-epoch reports, in order.
    pub epochs: Vec<RlEpochReport>,
    /// Average train-phase step time across all epochs, seconds.
    pub avg_step_time: f64,
    /// Global training throughput, tokens/second.
    pub tokens_per_second: f64,
    /// Mean |predicted-actual|/actual across all plan decisions.
    pub audit_mean_abs_rel_error: f64,
    /// Total expert-weight relocations across all epochs.
    pub relocation_moves: u64,
    /// Mean per-layer max-token/ideal ratio (balance quality).
    pub avg_max_token_ratio: f64,
}

/// Registry families the RL driver populates.
fn declare_rl_metrics(obs: &mut Observer) {
    obs.registry
        .declare_counter("laer_rl_epochs_total", "rollout→train epochs executed");
    obs.registry.declare_counter(
        "laer_rl_train_iterations_total",
        "train-phase iterations executed",
    );
    obs.registry.declare_gauge(
        "laer_rl_avg_step_seconds",
        "average train-phase iteration time",
    );
    obs.registry.declare_gauge(
        "laer_rl_audit_mean_abs_rel_error",
        "mean |predicted-actual|/actual of train-phase plan decisions",
    );
    obs.registry.declare_gauge(
        "laer_rl_relocation_moves",
        "expert-weight relocations executed across the run",
    );
}

/// Runs the rollout→train loop without a telemetry sink.
///
/// # Panics
///
/// Panics if the configuration is degenerate (zero layers, epochs or
/// rollouts).
pub fn run_rl(cfg: &RlConfig) -> RlResult {
    let mut obs = Observer::new();
    run_rl_observed(cfg, &mut obs).0
}

/// Runs the rollout→train loop with full observability: per-iteration
/// journal events, per-epoch [`RlEpochRecord`]s, plan-decision audits
/// under the mode-qualified system label, and headline gauges. Returns
/// the result plus the final iteration's [`Timeline`].
///
/// # Panics
///
/// Panics if the configuration is degenerate (zero layers, epochs or
/// rollouts).
pub fn run_rl_observed(cfg: &RlConfig, obs: &mut Observer) -> (RlResult, Timeline) {
    assert!(cfg.layers > 0, "at least one layer");
    assert!(cfg.epochs > 0, "at least one epoch");
    assert!(cfg.rollouts_per_epoch > 0, "at least one rollout");
    assert!((0.0..=1.0).contains(&cfg.drift), "drift must be in [0, 1]");
    let base = cfg.base();
    let topo = base.topology();
    let n = topo.num_devices();
    let label = cfg.system_label();
    let mut system = {
        let sys = LaerSystem::new(cfg.context());
        if cfg.num_chunks > 0 {
            sys.with_num_chunks(cfg.num_chunks)
        } else {
            sys
        }
    };
    let mut opts = system.schedule_options();
    if cfg.num_chunks > 0 {
        opts = opts.with_num_chunks(cfg.num_chunks);
    }
    declare_rl_metrics(obs);

    let mut gens = base.layer_generators();
    let rollouts = cfg.rollouts_per_epoch;
    let mut prev_layouts: Vec<Option<ExpertLayout>> = vec![None; cfg.layers];
    let mut epochs = Vec::with_capacity(cfg.epochs);
    let mut all_step_time = 0.0f64;
    let mut all_err = 0.0f64;
    let mut all_decisions = 0usize;
    let mut all_moves = 0u64;
    let mut ratio_acc = 0.0f64;
    let mut last_timeline: Option<Timeline> = None;

    for epoch in 0..cfg.epochs {
        // --- Rollout phase: generate this epoch's prompts and record
        // their routing, one trace per layer. ---
        let recorded: Vec<RoutingTrace> = (0..cfg.layers)
            .map(|l| {
                let mut t = RoutingTrace::new(TraceMeta {
                    description: format!("rl rollout epoch {epoch} layer {l}"),
                    seed: Some(cfg.seed),
                });
                t.record_from(&mut gens[l], rollouts);
                t
            })
            .collect();
        // The train dataloader's visit order over the rollout buffer;
        // prompt-keyed, so the replayed traces permute with it.
        let order: Vec<usize> = if cfg.replay_shuffle {
            permutation(rollouts, cfg.seed ^ (epoch as u64).wrapping_mul(0x9E37))
        } else {
            (0..rollouts).collect()
        };
        let exec: Vec<RoutingTrace> = recorded
            .iter()
            .map(|t| {
                let mut p = RoutingTrace::new(t.meta().clone());
                for &i in &order {
                    p.push(
                        t.get(i)
                            .unwrap_or_else(|| unreachable!("permutation index in range"))
                            .clone(),
                    );
                }
                p
            })
            .collect();
        if cfg.predictor == PredictorKind::Replay {
            system.install_replay(
                exec.clone(),
                cfg.replay_noise,
                cfg.seed.wrapping_add(epoch as u64),
            );
        }

        // --- Train phase: replay the recorded prompts. ---
        let mut epoch_time = 0.0f64;
        let mut epoch_err = 0.0f64;
        let mut epoch_decisions = 0usize;
        let mut epoch_moves = 0u64;
        for t in 0..rollouts {
            let iter = (epoch * rollouts + t) as u64;
            let mut iter_ratio = 0.0f64;
            let mut layer_timings: Vec<LayerTimings> = Vec::with_capacity(cfg.layers);
            for (l, trace) in exec.iter().enumerate() {
                let demand: &RoutingMatrix = trace
                    .get(t)
                    .unwrap_or_else(|| unreachable!("recorded above"));
                let plan = system.plan_layer(l, iter, demand);
                let ratio = plan.max_token_ratio();
                iter_ratio += ratio;
                ratio_acc += ratio;
                if let Some(prev) = &prev_layouts[l] {
                    epoch_moves += relocation_moves(&topo, prev, &plan.layout).len() as u64;
                }
                prev_layouts[l] = Some(plan.layout.clone());
                let max = |v: &[f64]| v.iter().copied().fold(0.0, f64::max);
                let record = AuditRecord {
                    system: label.clone(),
                    iteration: iter,
                    layer: l,
                    trigger: plan.audit.trigger.clone(),
                    predicted_comm: plan.audit.predicted_comm,
                    predicted_comp: plan.audit.predicted_comp,
                    actual_comm: 2.0 * max(&plan.timings.dispatch)
                        + 2.0 * max(&plan.timings.combine),
                    actual_comp: opts.expert_roundtrip_factor() * max(&plan.timings.expert_forward),
                    actual_imbalance: ratio,
                };
                epoch_err += record.rel_error().abs();
                epoch_decisions += 1;
                obs.registry.inc(
                    "laer_plan_decisions_total",
                    &[("system", label.as_str()), ("trigger", &plan.audit.trigger)],
                    1,
                );
                obs.audit.push(record);
                layer_timings.push(plan.timings);
            }
            let mut engine = Engine::new(&topo);
            let sched = schedule_iteration(&mut engine, &topo, &layer_timings, opts);
            epoch_time += sched.total;
            let record = journal::iteration_record(
                &label,
                iter,
                sched.total,
                iter_ratio / cfg.layers as f64,
                engine.timeline(),
                n,
                opts.effective_chunks(),
            );
            obs.journal.push("iteration", &record);
            obs.registry
                .inc("laer_rl_train_iterations_total", &[("system", &label)], 1);
            if epoch + 1 == cfg.epochs && t + 1 == rollouts {
                last_timeline = Some(engine.timeline().clone());
            }
        }

        let report = RlEpochReport {
            epoch,
            avg_step_time: epoch_time / rollouts as f64,
            audit_mean_abs_rel_error: epoch_err / epoch_decisions as f64,
            relocation_moves: epoch_moves,
        };
        obs.journal.push(
            "rl_epoch",
            &RlEpochRecord {
                system: label.clone(),
                mode: cfg.predictor.id().to_string(),
                epoch: epoch as u64,
                rollouts: rollouts as u64,
                drift: cfg.drift,
                avg_step_time: report.avg_step_time,
                audit_mean_abs_rel_error: report.audit_mean_abs_rel_error,
                relocation_moves: epoch_moves,
            },
        );
        obs.registry
            .inc("laer_rl_epochs_total", &[("system", &label)], 1);
        epochs.push(report);
        all_step_time += epoch_time;
        all_err += epoch_err;
        all_decisions += epoch_decisions;
        all_moves += epoch_moves;

        // --- Policy update: between epochs the popularity process
        // advances an extra `drift` fraction of an epoch. ---
        if epoch + 1 < cfg.epochs && cfg.drift > 0.0 {
            let skip = (cfg.drift * rollouts as f64).ceil() as usize;
            for gen in &mut gens {
                for _ in 0..skip {
                    let _ = gen.next_iteration();
                }
            }
        }
    }

    let iters = (cfg.epochs * rollouts) as f64;
    let avg_step_time = all_step_time / iters;
    let global_tokens = n as u64 * cfg.tokens_per_device;
    obs.registry.set(
        "laer_rl_avg_step_seconds",
        &[("system", &label)],
        avg_step_time,
    );
    obs.registry.set(
        "laer_rl_audit_mean_abs_rel_error",
        &[("system", &label)],
        all_err / all_decisions as f64,
    );
    obs.registry.set(
        "laer_rl_relocation_moves",
        &[("system", &label)],
        all_moves as f64,
    );
    let result = RlResult {
        system: label,
        mode: cfg.predictor.id().to_string(),
        epochs,
        avg_step_time,
        tokens_per_second: global_tokens as f64 / avg_step_time,
        audit_mean_abs_rel_error: all_err / all_decisions as f64,
        relocation_moves: all_moves,
        avg_max_token_ratio: ratio_acc / (iters * cfg.layers as f64),
    };
    (
        result,
        last_timeline.unwrap_or_else(|| unreachable!("at least one iteration ran")),
    )
}

/// Seeded Fisher–Yates permutation of `0..n`.
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        idx.swap(i, j);
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> RlConfig {
        RlConfig::new(ModelPreset::Mixtral8x7bE8k2)
            .with_cluster(2, 4)
            .with_layers(2)
            .with_epochs(2)
            .with_rollouts(6)
            .with_seed(5)
    }

    /// The headline claim in miniature: replay foresight at zero noise
    /// cuts the EMA's stale-demand audit error by at least 5×.
    #[test]
    fn replay_slashes_audit_error() {
        let ema = run_rl(&quick());
        let replay = run_rl(&quick().with_predictor(PredictorKind::Replay));
        assert!(
            replay.audit_mean_abs_rel_error * 5.0 <= ema.audit_mean_abs_rel_error,
            "replay {:.5} vs ema {:.5}",
            replay.audit_mean_abs_rel_error,
            ema.audit_mean_abs_rel_error
        );
        assert!(
            replay.avg_step_time <= ema.avg_step_time * 1.02,
            "foresight should not slow the run: replay {:.6} vs ema {:.6}",
            replay.avg_step_time,
            ema.avg_step_time
        );
    }

    /// RL runs are pure functions of their configuration.
    #[test]
    fn rl_runs_are_deterministic() {
        let cfg = quick()
            .with_predictor(PredictorKind::Replay)
            .with_shuffle(true);
        let a = run_rl(&cfg);
        let b = run_rl(&cfg);
        assert_eq!(a, b);
    }

    /// The shuffle permutes visit order but is prompt-keyed: recorded
    /// traces shuffle with it, so replay foresight survives.
    #[test]
    fn shuffle_preserves_foresight() {
        let shuffled = run_rl(
            &quick()
                .with_predictor(PredictorKind::Replay)
                .with_shuffle(true),
        );
        let ema = run_rl(&quick().with_shuffle(true));
        assert!(
            shuffled.audit_mean_abs_rel_error * 5.0 <= ema.audit_mean_abs_rel_error,
            "shuffled replay {:.5} vs ema {:.5}",
            shuffled.audit_mean_abs_rel_error,
            ema.audit_mean_abs_rel_error
        );
    }

    /// Replay noise degrades foresight monotonically toward (and past)
    /// nothing: noisy replay errs more than clean replay.
    #[test]
    fn replay_noise_degrades_foresight() {
        let clean = run_rl(&quick().with_predictor(PredictorKind::Replay));
        let noisy = run_rl(
            &quick()
                .with_predictor(PredictorKind::Replay)
                .with_replay_noise(0.5),
        );
        assert!(
            clean.audit_mean_abs_rel_error < noisy.audit_mean_abs_rel_error,
            "clean {:.5} vs noisy {:.5}",
            clean.audit_mean_abs_rel_error,
            noisy.audit_mean_abs_rel_error
        );
    }

    /// Observability: per-epoch journal records and mode-qualified
    /// audit summaries land in the observer.
    #[test]
    fn observed_run_journals_epochs_and_audits_per_mode() {
        let mut obs = Observer::new();
        let cfg = quick().with_predictor(PredictorKind::Replay);
        let (result, _timeline) = run_rl_observed(&cfg, &mut obs);
        assert_eq!(result.epochs.len(), 2);
        let jsonl = obs.journal.to_jsonl();
        assert_eq!(
            jsonl.matches("\"type\":\"rl_epoch\"").count(),
            2,
            "one rl_epoch record per epoch"
        );
        let summary = obs
            .audit
            .summary("laer-moe[replay]")
            .expect("mode-qualified audit summary");
        assert_eq!(summary.decisions, 2 * 6 * 2);
        assert!((summary.mean_abs_rel_error - result.audit_mean_abs_rel_error).abs() < 1e-12);
    }

    /// Drift between epochs widens the EMA's error but leaves replay
    /// foresight (which re-records each epoch) essentially untouched.
    #[test]
    fn drift_hurts_ema_not_replay() {
        let ema_drift = run_rl(&quick().with_drift(1.0));
        let replay_drift = run_rl(
            &quick()
                .with_drift(1.0)
                .with_predictor(PredictorKind::Replay),
        );
        assert!(
            replay_drift.audit_mean_abs_rel_error * 5.0 <= ema_drift.audit_mean_abs_rel_error,
            "replay under drift {:.5} vs ema under drift {:.5}",
            replay_drift.audit_mean_abs_rel_error,
            ema_drift.audit_mean_abs_rel_error
        );
    }
}
