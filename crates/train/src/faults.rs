//! Deterministic fault injection and graceful degraded-mode training.
//!
//! [`FaultRunner`] drives a [`MoeSystem`] through a multi-iteration run
//! while a seeded [`FaultPlan`] injects stragglers, link degradation,
//! device failures and planner outages. The runner is the recovery
//! state machine of the robustness experiments:
//!
//! * **detect** — at the first iteration a device failure is active, the
//!   system is asked to react ([`MoeSystem::handle_device_failures`]);
//! * **re-plan** — LAER re-runs Alg. 1/2 on the survivors and continues
//!   *elastically* (the failed device's tokens are dropped, everything
//!   else keeps training). Static-layout baselines cannot re-form their
//!   EP groups, so they pay the classic restart path: a collective
//!   timeout before the failure is even observed, a checkpoint reload,
//!   and re-execution of every iteration since the last checkpoint;
//! * **resume** — subsequent iterations run on the degraded cluster
//!   (elastic) or on replacement hardware (restart) with All-to-Alls
//!   priced against the degraded network view.
//!
//! Everything is a deterministic function of `(seed, FaultPlan)`: the
//! same pair produces bit-identical iteration times, and
//! [`FaultRunner::checkpoint`] / [`FaultRunner::restore`] round-trip the
//! full mutable state (routing generators, planner history, recovery
//! bookkeeping) so a resumed run continues bit-identically.

use crate::runner::ExperimentConfig;
use laer_baselines::{MoeSystem, SystemError};
use laer_cluster::{DegradedView, DeviceId, ExpertId, Topology};
use laer_fsep::{schedule_iteration_on, LayerTimings};
use laer_routing::{CheckpointError, GeneratorCheckpoint, RoutingGenerator};
use laer_sim::{record_fault_spans, write_chrome_trace, Engine, FaultPlan};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Time for an elastic system to notice a dead peer: the asynchronous
/// CPU planner process doubles as a failure detector (it heartbeats the
/// workers every iteration, Fig. 7), so detection is fast.
pub const DETECTION_DELAY: f64 = 20e-3;

/// One synchronous survivor re-plan (Alg. 1 + Alg. 2 on the CPU) before
/// elastic execution resumes.
pub const REPLAN_PENALTY: f64 = 10e-3;

/// Static baselines have no out-of-band failure detector: they learn of
/// a dead rank only when a collective on it times out.
pub const COLLECTIVE_TIMEOUT: f64 = 2.0;

/// Reloading model and optimizer state from the last checkpoint during
/// a restart.
pub const CHECKPOINT_RELOAD: f64 = 0.235;

/// Default interval (iterations) between simulated checkpoint writes;
/// restarting systems must redo the iterations since the last one.
pub const DEFAULT_CHECKPOINT_INTERVAL: u64 = 5;

/// Typed failure of a fault-injected training run.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainError {
    /// The system could not recover from a device failure (e.g. too few
    /// survivors to host every expert).
    Recovery(SystemError),
    /// A checkpoint could not be restored.
    Checkpoint(String),
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::Recovery(e) => write!(f, "unrecoverable fault: {e}"),
            TrainError::Checkpoint(msg) => write!(f, "checkpoint restore failed: {msg}"),
        }
    }
}

impl std::error::Error for TrainError {}

impl From<SystemError> for TrainError {
    fn from(e: SystemError) -> Self {
        TrainError::Recovery(e)
    }
}

impl From<CheckpointError> for TrainError {
    fn from(e: CheckpointError) -> Self {
        TrainError::Checkpoint(e.to_string())
    }
}

/// One iteration's outcome under fault injection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationReport {
    /// Global iteration index.
    pub iteration: u64,
    /// Wall-clock seconds, including any recovery penalty paid this
    /// iteration.
    pub time: f64,
    /// Tokens trained this iteration (shrinks under elastic execution).
    pub tokens: u64,
    /// Whether any fault was active.
    pub degraded: bool,
}

/// Serializable snapshot of a [`FaultRunner`] mid-run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunnerCheckpoint {
    /// Iterations completed.
    pub iteration: u64,
    /// Per-layer routing-generator state.
    pub generators: Vec<GeneratorCheckpoint>,
    /// System-specific state ([`MoeSystem::snapshot`]).
    pub system_state: serde::Value,
    /// Per-iteration seconds so far.
    pub iteration_times: Vec<f64>,
    /// Per-iteration token counts so far.
    pub iteration_tokens: Vec<u64>,
    /// Iteration of the last simulated checkpoint write.
    pub last_checkpoint_iteration: u64,
    /// Device indices whose failure has already been handled.
    pub handled_failures: Vec<usize>,
    /// Whether the system is running elastically on survivors.
    pub elastic: bool,
}

/// Multi-iteration driver executing an [`ExperimentConfig`] under a
/// [`FaultPlan`].
pub struct FaultRunner {
    cfg: ExperimentConfig,
    plan: FaultPlan,
    topo: Topology,
    system: Box<dyn MoeSystem>,
    gens: Vec<RoutingGenerator>,
    iteration: u64,
    iteration_times: Vec<f64>,
    iteration_tokens: Vec<u64>,
    checkpoint_interval: u64,
    last_checkpoint_iteration: u64,
    handled_failures: Vec<usize>,
    elastic: bool,
    capture_trace: bool,
    last_trace: Option<String>,
}

impl FaultRunner {
    /// Creates a runner; the run is a deterministic function of
    /// `(cfg.seed, plan)`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero layers).
    pub fn new(cfg: ExperimentConfig, plan: FaultPlan) -> Self {
        assert!(cfg.layers > 0, "at least one layer");
        let topo = cfg.topology();
        let system = cfg.build_system();
        let gens = cfg.layer_generators();
        Self {
            cfg,
            plan,
            topo,
            system,
            gens,
            iteration: 0,
            iteration_times: Vec::new(),
            iteration_tokens: Vec::new(),
            checkpoint_interval: DEFAULT_CHECKPOINT_INTERVAL,
            last_checkpoint_iteration: 0,
            handled_failures: Vec::new(),
            elastic: false,
            capture_trace: false,
            last_trace: None,
        }
    }

    /// Overrides the simulated checkpoint interval (iterations).
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn with_checkpoint_interval(mut self, interval: u64) -> Self {
        assert!(interval > 0, "checkpoint interval must be non-zero");
        self.checkpoint_interval = interval;
        self
    }

    /// Enables capturing a Chrome trace of each iteration's timeline
    /// (fault spans included); read it via [`FaultRunner::last_trace`].
    pub fn with_trace_capture(mut self, capture: bool) -> Self {
        self.capture_trace = capture;
        self
    }

    /// The most recent iteration's Chrome trace, when capture is on.
    pub fn last_trace(&self) -> Option<&str> {
        self.last_trace.as_deref()
    }

    /// Iterations completed so far.
    pub fn iteration(&self) -> u64 {
        self.iteration
    }

    /// The system under test.
    pub fn system_name(&self) -> &'static str {
        self.system.name()
    }

    /// Per-iteration seconds recorded so far.
    pub fn iteration_times(&self) -> &[f64] {
        &self.iteration_times
    }

    /// Per-iteration token counts recorded so far.
    pub fn iteration_tokens(&self) -> &[u64] {
        &self.iteration_tokens
    }

    /// Runs one iteration through the detect → re-plan → resume state
    /// machine.
    ///
    /// # Errors
    ///
    /// [`TrainError::Recovery`] if an active device failure leaves the
    /// system unable to continue (every expert needs a live replica).
    pub fn step(&mut self) -> Result<IterationReport, TrainError> {
        let active = self.plan.active_at(self.iteration);
        self.system.set_planner_available(!active.planner_outage());

        // ---- detect + re-plan on newly observed device failures ----
        let newly_failed: Vec<DeviceId> = active
            .failed_devices()
            .filter(|d| !self.handled_failures.contains(&d.index()))
            .collect();
        let mut penalty = 0.0;
        if !newly_failed.is_empty() {
            let failure_view = active.degraded_view(&self.topo);
            if self.system.handle_device_failures(&failure_view)? {
                // Elastic continuation on the survivors.
                self.elastic = true;
                penalty += DETECTION_DELAY + REPLAN_PENALTY;
            } else {
                // Static layout: collective timeout, reload the last
                // checkpoint onto replacement hardware, redo the lost
                // iterations.
                let redo = self
                    .iteration
                    .saturating_sub(self.last_checkpoint_iteration);
                let avg = if self.iteration_times.is_empty() {
                    0.0
                } else {
                    self.iteration_times.iter().sum::<f64>() / self.iteration_times.len() as f64
                };
                penalty += COLLECTIVE_TIMEOUT + CHECKPOINT_RELOAD + redo as f64 * avg;
            }
            for d in newly_failed {
                self.handled_failures.push(d.index());
            }
            self.handled_failures.sort_unstable();
        }

        // ---- network view for this iteration's pricing ----
        // Elastic systems keep the failures in view; restarted systems
        // got replacement hardware, so only link faults remain for them.
        let mut view = DegradedView::new(self.topo.clone());
        for (a, b, factor) in active.degraded_links() {
            view.degrade_link(a, b, factor);
        }
        if self.elastic {
            for d in active.failed_devices() {
                view.fail_device(d);
            }
        }
        let exec: Vec<DeviceId> = if self.elastic {
            view.survivors()
        } else {
            self.topo.devices().collect()
        };
        self.system
            .context_mut()
            .set_fault_view(if view.is_nominal() { None } else { Some(view) });

        // ---- plan and execute the iteration ----
        let degraded = !active.is_empty();
        let mut layer_timings: Vec<LayerTimings> = Vec::with_capacity(self.cfg.layers);
        for l in 0..self.cfg.layers {
            let mut demand = self.gens[l].next_iteration();
            if self.elastic {
                // Elastic batch: the dead device's tokens are dropped.
                for &di in &self.handled_failures {
                    for j in 0..demand.num_experts() {
                        demand.set(DeviceId::new(di), ExpertId::new(j), 0);
                    }
                }
            }
            let mut plan = self.system.plan_layer(l, self.iteration, &demand);
            // Stragglers slow the device's expert computation. (Attention
            // is a single scalar in LayerTimings, so the slowdown is
            // applied to the dominant, device-resolved compute term.)
            for (di, t) in plan.timings.expert_forward.iter_mut().enumerate() {
                *t *= active.compute_multiplier(DeviceId::new(di));
            }
            layer_timings.push(plan.timings);
        }
        let opts = self.system.schedule_options();
        let mut engine = Engine::new(&self.topo);
        let t = schedule_iteration_on(&mut engine, &self.topo, &exec, &layer_timings, opts);
        record_fault_spans(engine.timeline_mut(), &active, 0.0, t.total);
        if self.capture_trace {
            let mut buf = Vec::new();
            if write_chrome_trace(engine.timeline(), &mut buf).is_ok() {
                self.last_trace = String::from_utf8(buf).ok();
            }
        }

        let time = t.total + penalty;
        let tokens = exec.len() as u64 * self.cfg.tokens_per_device;
        let report = IterationReport {
            iteration: self.iteration,
            time,
            tokens,
            degraded,
        };
        self.iteration += 1;
        self.iteration_times.push(time);
        self.iteration_tokens.push(tokens);
        if self.iteration.is_multiple_of(self.checkpoint_interval) {
            self.last_checkpoint_iteration = self.iteration;
        }
        Ok(report)
    }

    /// Runs `iterations` steps and returns their reports.
    ///
    /// # Errors
    ///
    /// Propagates the first [`TrainError`] from [`FaultRunner::step`].
    pub fn run(&mut self, iterations: u64) -> Result<Vec<IterationReport>, TrainError> {
        (0..iterations).map(|_| self.step()).collect()
    }

    /// Snapshots the full mutable state for checkpoint/restore.
    pub fn checkpoint(&self) -> RunnerCheckpoint {
        RunnerCheckpoint {
            iteration: self.iteration,
            generators: self.gens.iter().map(RoutingGenerator::checkpoint).collect(),
            system_state: self.system.snapshot(),
            iteration_times: self.iteration_times.clone(),
            iteration_tokens: self.iteration_tokens.clone(),
            last_checkpoint_iteration: self.last_checkpoint_iteration,
            handled_failures: self.handled_failures.clone(),
            elastic: self.elastic,
        }
    }

    /// Restores state captured by [`FaultRunner::checkpoint`]; the
    /// restored runner continues bit-identically to the snapshotted one
    /// (given the same `cfg` and `plan`).
    ///
    /// # Errors
    ///
    /// [`TrainError::Checkpoint`] on shape mismatches,
    /// [`TrainError::Recovery`] if the system rejects its snapshot.
    pub fn restore(&mut self, ckpt: RunnerCheckpoint) -> Result<(), TrainError> {
        if ckpt.generators.len() != self.gens.len() {
            return Err(TrainError::Checkpoint(format!(
                "checkpoint has {} layer generators, config has {}",
                ckpt.generators.len(),
                self.gens.len()
            )));
        }
        self.gens = ckpt
            .generators
            .into_iter()
            .map(RoutingGenerator::from_checkpoint)
            .collect::<Result<_, _>>()?;
        self.system.restore(&ckpt.system_state)?;
        // Per-step state (fault view, planner availability) is re-derived
        // from the plan inside `step`, and `handled_failures` keeps the
        // detect phase from firing again, so nothing else to re-arm.
        self.iteration = ckpt.iteration;
        self.iteration_times = ckpt.iteration_times;
        self.iteration_tokens = ckpt.iteration_tokens;
        self.last_checkpoint_iteration = ckpt.last_checkpoint_iteration;
        self.handled_failures = ckpt.handled_failures;
        self.elastic = ckpt.elastic;
        Ok(())
    }
}

/// Throughput (tokens/second) over a window of reports.
///
/// # Panics
///
/// Panics if the window is empty.
pub fn window_throughput(reports: &[IterationReport]) -> f64 {
    assert!(!reports.is_empty(), "empty window");
    let tokens: u64 = reports.iter().map(|r| r.tokens).sum();
    let time: f64 = reports.iter().map(|r| r.time).sum();
    tokens as f64 / time
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_experiment;
    use laer_baselines::SystemKind;
    use laer_model::ModelPreset;
    use laer_sim::{FaultEvent, FaultKind};

    fn quick(system: SystemKind) -> ExperimentConfig {
        ExperimentConfig::new(ModelPreset::Mixtral8x7bE8k2, system)
            .with_iterations(6, 2)
            .with_layers(2)
            .with_seed(3)
    }

    fn failure_plan(device: usize, at: u64) -> FaultPlan {
        let mut plan = FaultPlan::new();
        plan.push(FaultEvent {
            kind: FaultKind::DeviceFailure {
                device: DeviceId::new(device),
            },
            start: at,
            end: u64::MAX,
        })
        .unwrap();
        plan
    }

    /// With an empty fault plan the runner reproduces `run_experiment`'s
    /// iteration times exactly.
    #[test]
    fn empty_plan_matches_run_experiment() {
        let cfg = quick(SystemKind::Laer);
        let baseline = run_experiment(&cfg);
        let mut runner = FaultRunner::new(cfg.clone(), FaultPlan::new());
        let reports = runner.run((cfg.warmup + cfg.iterations) as u64).unwrap();
        let times: Vec<f64> = reports[cfg.warmup..].iter().map(|r| r.time).collect();
        assert_eq!(times, baseline.iteration_times);
        assert!(reports.iter().all(|r| !r.degraded));
    }

    /// Identical `(seed, FaultPlan)` pairs produce bit-identical runs.
    #[test]
    fn deterministic_under_seed_and_plan() {
        let plan = FaultPlan::random(7, 32, 12);
        let a = FaultRunner::new(quick(SystemKind::Laer), plan.clone())
            .run(12)
            .unwrap();
        let b = FaultRunner::new(quick(SystemKind::Laer), plan)
            .run(12)
            .unwrap();
        assert_eq!(a, b);
    }

    /// LAER survives a device failure elastically: zero panics, the dead
    /// device drops out of the token count, and rolling throughput over
    /// the 10 iterations after the failure stays within 90 % of
    /// fault-free.
    #[test]
    fn laer_recovers_elastically() {
        let fail_at = 4u64;
        let mut faulted = FaultRunner::new(quick(SystemKind::Laer), failure_plan(13, fail_at));
        let reports = faulted.run(fail_at + 10).unwrap();
        let mut clean = FaultRunner::new(quick(SystemKind::Laer), FaultPlan::new());
        let clean_reports = clean.run(fail_at + 10).unwrap();
        // Elastic: post-failure iterations train 31 devices' tokens.
        let post = &reports[fail_at as usize..];
        assert!(post.iter().all(|r| r.tokens == 31 * 16 * 1024));
        let ratio = window_throughput(post) / window_throughput(&clean_reports[fail_at as usize..]);
        assert!(
            ratio >= 0.9,
            "LAER should recover to >=90% of fault-free, got {ratio:.3}"
        );
    }

    /// The static vanilla-EP baseline pays the restart path and does
    /// *not* reach 90 % of its fault-free throughput in the same window.
    #[test]
    fn vanilla_restart_stalls() {
        let fail_at = 4u64;
        let mut faulted = FaultRunner::new(quick(SystemKind::VanillaEp), failure_plan(13, fail_at));
        let reports = faulted.run(fail_at + 10).unwrap();
        let mut clean = FaultRunner::new(quick(SystemKind::VanillaEp), FaultPlan::new());
        let clean_reports = clean.run(fail_at + 10).unwrap();
        let post = &reports[fail_at as usize..];
        let ratio = window_throughput(post) / window_throughput(&clean_reports[fail_at as usize..]);
        assert!(
            ratio < 0.9,
            "static restart should stall below 90%, got {ratio:.3}"
        );
    }

    /// An unrecoverable cluster aborts with a typed error, not a panic.
    #[test]
    fn unrecoverable_failure_aborts_typed() {
        // 4 devices, C = 2, E = 8: losing any device makes the instance
        // unsatisfiable for an elastic system.
        let cfg = ExperimentConfig::new(ModelPreset::Mixtral8x7bE8k2, SystemKind::Laer)
            .with_cluster(1, 4)
            .with_layers(1)
            .with_seed(1);
        let mut runner = FaultRunner::new(cfg, failure_plan(2, 1));
        assert!(runner.step().is_ok());
        assert!(matches!(runner.step(), Err(TrainError::Recovery(_))));
    }

    /// Checkpoint → serde round trip → restore resumes bit-identically,
    /// across a fault boundary.
    #[test]
    fn checkpoint_restore_bit_identical() {
        use serde::{Deserialize, Serialize};
        let plan = FaultPlan::random(11, 32, 16);
        let cfg = quick(SystemKind::Laer);
        let mut uninterrupted = FaultRunner::new(cfg.clone(), plan.clone());
        let full = uninterrupted.run(16).unwrap();

        let mut first = FaultRunner::new(cfg.clone(), plan.clone());
        let head = first.run(9).unwrap();
        let value = first.checkpoint().serialize_value();
        let ckpt = RunnerCheckpoint::deserialize_value(&value).unwrap();
        let mut second = FaultRunner::new(cfg, plan);
        second.restore(ckpt).unwrap();
        let tail = second.run(7).unwrap();

        let resumed: Vec<IterationReport> = head.into_iter().chain(tail).collect();
        assert_eq!(resumed, full);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(8))]

        /// Satellite: a checkpoint taken *inside* an active straggler /
        /// link-degrade window restores bit-identically. The snapshot
        /// carries no fault state at all — the restored runner must
        /// re-derive the mid-fault view (compute multipliers, degraded
        /// links, planner availability) from the plan alone.
        #[test]
        fn checkpoint_mid_fault_restores_bit_identically(
            seed in 0u64..10_000,
            device in 0usize..32,
            factor in 1.5f64..4.0,
            link_factor in 0.1f64..0.9,
            start in 2u64..6,
            len in 3u64..6,
            sys in proptest::prelude::prop_oneof![
                proptest::prelude::Just(SystemKind::Laer),
                proptest::prelude::Just(SystemKind::FsdpEp),
            ],
        ) {
            use proptest::prelude::{prop_assert, prop_assert_eq};

            let end = start + len;
            let mut plan = FaultPlan::new();
            plan.push(FaultEvent {
                kind: FaultKind::Straggler {
                    device: DeviceId::new(device),
                    factor,
                },
                start,
                end,
            })
            .unwrap();
            plan.push(FaultEvent {
                kind: FaultKind::LinkDegrade {
                    a: DeviceId::new(device),
                    b: DeviceId::new((device + 7) % 32),
                    factor: link_factor,
                },
                start,
                end,
            })
            .unwrap();
            let cfg = quick(sys).with_seed(seed);
            let total = end + 3;
            // Cut strictly inside the fault window.
            let cut = start + len / 2;
            prop_assert!(cut > start && cut < end);

            let mut uninterrupted = FaultRunner::new(cfg.clone(), plan.clone());
            let full = uninterrupted.run(total).unwrap();
            prop_assert!(full[cut as usize].degraded, "cut must land mid-fault");

            let mut first = FaultRunner::new(cfg.clone(), plan.clone());
            let head = first.run(cut).unwrap();
            let ckpt = first.checkpoint();
            let mut second = FaultRunner::new(cfg, plan);
            second.restore(ckpt).unwrap();
            let tail = second.run(total - cut).unwrap();

            let resumed: Vec<IterationReport> = head.into_iter().chain(tail).collect();
            prop_assert_eq!(resumed, full);
        }
    }

    /// Straggler iterations render fault spans into the Chrome trace.
    #[test]
    fn trace_renders_fault_spans() {
        let mut plan = FaultPlan::new();
        plan.push(FaultEvent {
            kind: FaultKind::Straggler {
                device: DeviceId::new(5),
                factor: 2.5,
            },
            start: 0,
            end: 4,
        })
        .unwrap();
        let mut runner = FaultRunner::new(quick(SystemKind::FsdpEp), plan).with_trace_capture(true);
        let _ = runner.run(2).unwrap();
        let trace = runner.last_trace().expect("capture enabled");
        assert!(trace.contains("fault"), "trace should render fault spans");
    }
}
