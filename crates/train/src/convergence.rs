//! Loss-curve model for the convergence studies (Figs. 2 and 9).
//!
//! Language-model pretraining loss follows a power law in optimisation
//! steps. The auxiliary load-balancing loss diverts part of the gradient
//! signal, so a run with weight `w` behaves like the base run with a
//! reduced number of *effective* steps — reproducing Fig. 2's ordering
//! (higher weight ⇒ more steps to a given loss). Wall-clock curves
//! (Fig. 9a left) combine the step curve with each system's iteration
//! time, which *improves* with balance — hence Megatron@1e-2 beating
//! Megatron@1e-4 in time despite losing in steps, and LAER@1e-4 beating
//! both.
//!
//! A per-system multiplicative jitter of amplitude ~2·10⁻⁴ stands in for
//! run-to-run nondeterminism (data order, atomics); Fig. 9(b)'s check is
//! that two systems at the same weight stay within a relative error of
//! 1e-3 — which this model reproduces and the FSEP bit-exactness tests
//! ground.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Irreducible loss of the modelled run.
const LOSS_FLOOR: f64 = 1.65;
/// Power-law amplitude (initial loss ≈ floor + amplitude at step ~s0).
const AMPLITUDE: f64 = 9.0;
/// Power-law offset in steps.
const OFFSET: f64 = 40.0;
/// Power-law exponent.
const EXPONENT: f64 = 0.42;
/// Amplitude of the per-system run-to-run jitter.
const JITTER: f64 = 2.0e-4;

/// One `(step, wall-clock seconds, loss)` sample of a convergence curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LossPoint {
    /// Optimisation step.
    pub step: u64,
    /// Wall-clock seconds since training start.
    pub time: f64,
    /// Training loss.
    pub loss: f64,
}

/// Deterministic convergence model for one (system, aux-weight) run.
#[derive(Debug, Clone)]
pub struct ConvergenceModel {
    aux_weight: f64,
    iteration_time: f64,
    jitter_seed: u64,
}

impl ConvergenceModel {
    /// Creates a model for a run with auxiliary-loss weight `aux_weight`
    /// whose iterations take `iteration_time` seconds. `jitter_seed`
    /// identifies the run (e.g. a hash of the system name) for the
    /// small nondeterminism term.
    ///
    /// # Panics
    ///
    /// Panics if `iteration_time` is not positive or `aux_weight` is
    /// negative.
    pub fn new(aux_weight: f64, iteration_time: f64, jitter_seed: u64) -> Self {
        assert!(iteration_time > 0.0, "iteration time must be positive");
        assert!(aux_weight >= 0.0, "aux weight must be non-negative");
        Self {
            aux_weight,
            iteration_time,
            jitter_seed,
        }
    }

    /// Per-step progress multiplier: the fraction of gradient signal
    /// advancing the LM objective (1.0 at weight 0, ≈0.99 at 1e-4,
    /// ≈0.83 at 1e-2).
    pub fn step_quality(&self) -> f64 {
        1.0 - 0.2 * self.aux_weight / (self.aux_weight + 2.0e-3)
    }

    /// Loss after `step` optimisation steps (without jitter).
    pub fn mean_loss(&self, step: u64) -> f64 {
        let effective = step as f64 * self.step_quality();
        LOSS_FLOOR + AMPLITUDE * (OFFSET + effective).powf(-EXPONENT)
    }

    /// Loss after `step` steps including the run's jitter term.
    pub fn loss(&self, step: u64) -> f64 {
        let mut rng =
            StdRng::seed_from_u64(self.jitter_seed ^ step.wrapping_mul(0x2545_F491_4F6C_DD1D));
        let eps: f64 = rng.gen_range(-JITTER..=JITTER);
        self.mean_loss(step) * (1.0 + eps)
    }

    /// Samples the curve every `stride` steps up to `steps`.
    pub fn curve(&self, steps: u64, stride: u64) -> Vec<LossPoint> {
        assert!(stride >= 1, "stride must be at least 1");
        (0..=steps)
            .step_by(stride as usize)
            .map(|s| LossPoint {
                step: s,
                time: s as f64 * self.iteration_time,
                loss: self.loss(s),
            })
            .collect()
    }

    /// Steps needed to reach `target` loss (binary search on the mean
    /// curve).
    ///
    /// Returns `None` if the target is at or below the loss floor.
    pub fn steps_to_loss(&self, target: f64) -> Option<u64> {
        if target <= LOSS_FLOOR {
            return None;
        }
        let (mut lo, mut hi) = (0u64, 1u64);
        while self.mean_loss(hi) > target {
            hi *= 2;
            if hi > 1 << 40 {
                return None;
            }
        }
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.mean_loss(mid) > target {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        Some(lo)
    }

    /// Wall-clock seconds needed to reach `target` loss.
    pub fn time_to_loss(&self, target: f64) -> Option<f64> {
        self.steps_to_loss(target)
            .map(|s| s as f64 * self.iteration_time)
    }

    /// Maximum relative loss difference against another run over
    /// `steps` steps (the Fig. 9b metric).
    pub fn max_relative_error(&self, other: &ConvergenceModel, steps: u64) -> f64 {
        (0..=steps)
            .map(|s| {
                let a = self.loss(s);
                let b = other.loss(s);
                (a - b).abs() / b
            })
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 2: higher auxiliary-loss weight needs more steps to reach
    /// the same loss.
    #[test]
    fn aux_weight_slows_step_convergence() {
        let target = 2.4;
        let s0 = ConvergenceModel::new(0.0, 1.0, 1)
            .steps_to_loss(target)
            .unwrap();
        let s4 = ConvergenceModel::new(1e-4, 1.0, 1)
            .steps_to_loss(target)
            .unwrap();
        let s3 = ConvergenceModel::new(1e-3, 1.0, 1)
            .steps_to_loss(target)
            .unwrap();
        let s2 = ConvergenceModel::new(1e-2, 1.0, 1)
            .steps_to_loss(target)
            .unwrap();
        assert!(s0 <= s4 && s4 < s3 && s3 < s2, "{s0} {s4} {s3} {s2}");
    }

    /// Fig. 9(a): Megatron@1e-2 iterates faster (balanced routing) and
    /// beats Megatron@1e-4 in wall-clock despite needing more steps;
    /// LAER@1e-4 (fast iterations at low weight) beats both.
    #[test]
    fn wall_clock_ordering_of_fig9() {
        let target = 2.3;
        // Iteration times with the qualitative ordering the end-to-end
        // runs produce: LAER@1e-4 fast; Megatron@1e-4 slow (imbalanced);
        // Megatron@1e-2 in between (balance bought with aux loss).
        let laer = ConvergenceModel::new(1e-4, 6.0, 1);
        let mega_low = ConvergenceModel::new(1e-4, 10.0, 2);
        let mega_high = ConvergenceModel::new(1e-2, 7.0, 3);
        let t_laer = laer.time_to_loss(target).unwrap();
        let t_low = mega_low.time_to_loss(target).unwrap();
        let t_high = mega_high.time_to_loss(target).unwrap();
        assert!(
            t_high < t_low,
            "1e-2 {t_high} should beat 1e-4 {t_low} in time"
        );
        assert!(t_laer < t_high, "LAER {t_laer} should beat both");
        // ...while in *steps* the low-weight run wins.
        assert!(mega_low.steps_to_loss(target).unwrap() < mega_high.steps_to_loss(target).unwrap());
    }

    /// Fig. 9(b): same-weight runs agree to within a relative error of
    /// 1e-3.
    #[test]
    fn same_weight_relative_error_below_1e3() {
        let a = ConvergenceModel::new(1e-4, 6.0, 11);
        let b = ConvergenceModel::new(1e-4, 10.0, 22);
        let err = a.max_relative_error(&b, 1500);
        assert!(err < 1e-3, "relative error {err}");
        assert!(err > 0.0, "jitter should make runs non-identical");
    }

    #[test]
    fn loss_is_monotone_decreasing() {
        let m = ConvergenceModel::new(0.0, 1.0, 5);
        let mut prev = f64::INFINITY;
        for s in (0..3000).step_by(100) {
            let l = m.mean_loss(s);
            assert!(l < prev);
            prev = l;
        }
    }

    #[test]
    fn unreachable_target_is_none() {
        let m = ConvergenceModel::new(0.0, 1.0, 5);
        assert!(m.steps_to_loss(1.0).is_none());
    }

    #[test]
    fn curve_samples_are_consistent() {
        let m = ConvergenceModel::new(1e-4, 2.0, 7);
        let c = m.curve(100, 10);
        assert_eq!(c.len(), 11);
        assert_eq!(c[5].step, 50);
        assert_eq!(c[5].time, 100.0);
        assert_eq!(c[5].loss, m.loss(50));
    }
}
