//! Trace-driven scalability study — Appendix D / Tab. 4.
//!
//! The paper replays Mixtral-8x7B-e8k2 routing traces against cluster
//! sizes from 8 to 128 GPUs and reports the MLP-module (dispatch +
//! expert compute + combine) speedup of the re-layout algorithm over the
//! static layout, finding it stable at ≈1.48–1.49×.

use laer_baselines::{FsdpEpSystem, LaerSystem, MoeSystem, PlanningMode, SystemContext};
use laer_cluster::Topology;
use laer_fsep::LayerTimings;
use laer_model::{GpuSpec, ModelPreset};
use laer_routing::{RoutingGenerator, RoutingGeneratorConfig};
use serde::{Deserialize, Serialize};

/// One row of Tab. 4.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MlpSpeedupRow {
    /// Cluster size (GPUs).
    pub gpus: usize,
    /// MLP-module speedup of LAER over the static FSDP+EP layout.
    pub speedup: f64,
}

/// MLP-module forward latency implied by one layer's timings: straggler
/// dispatch + straggler expert compute + straggler combine.
fn mlp_time(t: &LayerTimings) -> f64 {
    let max = |v: &[f64]| v.iter().copied().fold(0.0, f64::max);
    max(&t.dispatch) + max(&t.expert_forward) + max(&t.combine)
}

/// Replays a synthetic Mixtral-8x7B-e8k2 routing trace on `gpus` devices
/// (nodes of 8) and returns the average MLP-module speedup of LAER's
/// re-layout over the static layout across `iterations` iterations.
///
/// # Panics
///
/// Panics if `gpus` is not a positive multiple of 8 or `iterations` is
/// zero.
pub fn mlp_speedup(gpus: usize, iterations: usize, seed: u64) -> MlpSpeedupRow {
    assert!(
        gpus >= 8 && gpus.is_multiple_of(8),
        "gpus must be a multiple of 8"
    );
    assert!(iterations > 0, "at least one iteration");
    let preset = ModelPreset::Mixtral8x7bE8k2;
    let cfg = preset.config();
    let topo = Topology::new(gpus / 8, 8)
        .unwrap_or_else(|_| unreachable!("gpus asserted to be a positive multiple of 8"));
    let tokens = 16 * 1024u64;
    let ctx = || SystemContext::new(topo.clone(), cfg.clone(), GpuSpec::a100(), tokens, 8192);
    // Appendix D replays recorded traces offline, so the re-layout for
    // each iteration is planned from that iteration's own routing —
    // the oracle mode, isolating the algorithm from predictor staleness.
    let mut laer = LaerSystem::new(ctx()).with_mode(PlanningMode::Oracle);
    let mut fsdp = FsdpEpSystem::new(ctx());
    let mut gen = RoutingGenerator::new(
        RoutingGeneratorConfig::new(gpus, cfg.experts(), tokens * cfg.top_k() as u64)
            .with_seed(seed),
    );
    let mut num = 0.0;
    let mut den = 0.0;
    for it in 0..iterations {
        let demand = gen.next_iteration();
        let pl = laer.plan_layer(0, it as u64, &demand);
        let pf = fsdp.plan_layer(0, it as u64, &demand);
        num += mlp_time(&pf.timings);
        den += mlp_time(&pl.timings);
    }
    MlpSpeedupRow {
        gpus,
        speedup: num / den,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tab. 4's shape: the re-layout speedup is material (>1.2×) at
    /// every scale and stable across the multi-node sizes. (At 8–16
    /// GPUs our topology model rebalances entirely over NVLink, so the
    /// speedup is *higher* there; see EXPERIMENTS.md.)
    #[test]
    fn speedup_is_stable_across_cluster_sizes() {
        let rows: Vec<_> = [8usize, 16, 32, 64, 128]
            .iter()
            .map(|&g| mlp_speedup(g, 8, 42))
            .collect();
        for r in &rows {
            assert!(
                r.speedup > 1.2,
                "{} GPUs: speedup {:.3} too small",
                r.gpus,
                r.speedup
            );
        }
        let multi_node: Vec<f64> = rows
            .iter()
            .filter(|r| r.gpus >= 32)
            .map(|r| r.speedup)
            .collect();
        let max = multi_node.iter().copied().fold(0.0, f64::max);
        let min = multi_node.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(
            max / min < 1.15,
            "speedup unstable beyond 32 GPUs: min {min:.3}, max {max:.3}"
        );
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn rejects_bad_cluster_size() {
        let _ = mlp_speedup(12, 1, 0);
    }
}
