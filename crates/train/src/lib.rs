//! End-to-end training experiments: the driver that turns systems,
//! routing traces and the simulator into the numbers of Sec. 5.
//!
//! * [`runner`] — multi-iteration experiment driver (Figs. 1b, 8, 10a,
//!   10b): per iteration it draws every layer's routing demand, lets the
//!   system plan, schedules the iteration on the simulator and collects
//!   throughput, breakdowns and balance metrics.
//! * [`convergence`] — the loss-curve model behind Figs. 2 and 9 (higher
//!   auxiliary-loss weight → slower per-step convergence but better
//!   balance → faster iterations).
//! * [`scaling`] — the trace-driven MLP-speedup study of Appendix D /
//!   Tab. 4.
//! * [`faults`] — deterministic fault injection and the detect → re-plan
//!   → resume recovery state machine behind the robustness experiments.
//! * [`rl`] — the RL post-training workload: rollout→train epochs where
//!   the train phase replays routing traces recorded during rollout,
//!   giving the layout tuner perfect foresight instead of a stale EMA.
//!
//! # Example
//!
//! ```no_run
//! use laer_baselines::SystemKind;
//! use laer_model::ModelPreset;
//! use laer_train::{ExperimentConfig, run_experiment};
//!
//! let cfg = ExperimentConfig::new(ModelPreset::Mixtral8x7bE8k2, SystemKind::Laer)
//!     .with_iterations(5, 2)
//!     .with_layers(4);
//! let result = run_experiment(&cfg);
//! println!("{} tokens/s", result.tokens_per_second);
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

pub mod convergence;
pub mod faults;
pub mod rl;
pub mod runner;
pub mod scaling;

pub use convergence::{ConvergenceModel, LossPoint};
pub use faults::{
    window_throughput, FaultRunner, IterationReport, RunnerCheckpoint, TrainError,
    CHECKPOINT_RELOAD, COLLECTIVE_TIMEOUT, DETECTION_DELAY, REPLAN_PENALTY,
};
pub use rl::{run_rl, run_rl_observed, RlConfig, RlEpochReport, RlResult};
pub use runner::{
    run_experiment, run_experiment_diagnosed, run_experiment_observed, run_experiment_on_trace,
    ExperimentConfig, ExperimentResult, TrainDiagnosis,
};
pub use scaling::{mlp_speedup, MlpSpeedupRow};
