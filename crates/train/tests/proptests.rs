//! Property-based tests for the training driver and convergence model.

use laer_baselines::SystemKind;
use laer_model::ModelPreset;
use laer_obs::Observer;
use laer_train::{run_experiment, run_experiment_observed, ConvergenceModel, ExperimentConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Experiments always produce positive, finite results whose
    /// throughput is consistent with the iteration times.
    #[test]
    fn experiments_are_well_formed(
        seed in 0u64..1000,
        layers in 1usize..4,
        system_pick in 0usize..4,
    ) {
        let system = SystemKind::FIG8[system_pick];
        let cfg = ExperimentConfig::new(ModelPreset::Mixtral8x7bE8k2, system)
            .with_layers(layers)
            .with_iterations(3, 1)
            .with_seed(seed);
        let r = run_experiment(&cfg);
        prop_assert!(r.avg_iteration_time.is_finite() && r.avg_iteration_time > 0.0);
        prop_assert!(r.tokens_per_second.is_finite() && r.tokens_per_second > 0.0);
        prop_assert!(r.avg_max_token_ratio >= 1.0);
        prop_assert_eq!(r.iteration_times.len(), 3);
        let mean = r.iteration_times.iter().sum::<f64>() / 3.0;
        prop_assert!((mean - r.avg_iteration_time).abs() < 1e-12);
        let implied = 32.0 * cfg.tokens_per_device as f64 / r.avg_iteration_time;
        prop_assert!((implied - r.tokens_per_second).abs() / implied < 1e-9);
        prop_assert!(r.breakdown.total() > 0.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The convergence model is monotone: loss decreases in steps and
    /// increases in auxiliary weight (at fixed steps); time-to-loss
    /// scales linearly with iteration time.
    #[test]
    fn convergence_monotonicity(
        w1 in 0.0f64..1e-2,
        w2 in 0.0f64..1e-2,
        steps in 10u64..5000,
        iter_time in 0.1f64..20.0,
    ) {
        let (lo, hi) = if w1 <= w2 { (w1, w2) } else { (w2, w1) };
        let a = ConvergenceModel::new(lo, iter_time, 1);
        let b = ConvergenceModel::new(hi, iter_time, 1);
        prop_assert!(a.mean_loss(steps) <= b.mean_loss(steps) + 1e-12);
        prop_assert!(a.mean_loss(steps + 100) < a.mean_loss(steps));
        // Linear time scaling.
        let fast = ConvergenceModel::new(lo, iter_time, 1);
        let slow = ConvergenceModel::new(lo, 2.0 * iter_time, 1);
        if let (Some(tf), Some(ts)) = (fast.time_to_loss(2.4), slow.time_to_loss(2.4)) {
            prop_assert!((ts - 2.0 * tf).abs() < 1e-9 * ts.max(1e-12));
        }
    }

    /// Jitter stays within its advertised amplitude.
    #[test]
    fn jitter_is_bounded(seed in 0u64..10_000, step in 0u64..10_000) {
        let m = ConvergenceModel::new(1e-4, 1.0, seed);
        let rel = (m.loss(step) - m.mean_loss(step)).abs() / m.mean_loss(step);
        prop_assert!(rel <= 2.1e-4, "jitter {rel}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Fault-free systems that plan on the *actual* routing demand
    /// predict the Eq. 1 iteration cost to within a fixed tolerance of
    /// the simulated actual, across seeds and cluster shapes. (LAER's
    /// asynchronous planner intentionally works on stale demand, so it
    /// is excluded — its honest gap is what the decision audit is for.)
    #[test]
    fn predicted_cost_tracks_simulated_actual(
        seed in 0u64..1000,
        nodes in 1usize..=4,
        dpn_pick in 0usize..2,
        system_pick in 0usize..2,
    ) {
        let devices = [4usize, 8][dpn_pick];
        let system = [SystemKind::FsdpEp, SystemKind::VanillaEp][system_pick];
        let cfg = ExperimentConfig::new(ModelPreset::Mixtral8x7bE8k2, system)
            .with_cluster(nodes, devices)
            .with_layers(2)
            .with_iterations(4, 1)
            .with_seed(seed);
        let mut obs = Observer::new();
        let _ = run_experiment_observed(&cfg, &mut obs);
        let summaries = obs.audit.summaries();
        prop_assert_eq!(summaries.len(), 1);
        for s in summaries {
            prop_assert!(s.decisions > 0);
            prop_assert!(
                s.mean_abs_rel_error <= 0.05,
                "{}: mean |rel err| {:.4} over {} decisions",
                s.system, s.mean_abs_rel_error, s.decisions
            );
            prop_assert!(
                s.worst_abs_rel_error <= 0.10,
                "{}: worst |rel err| {:.4}",
                s.system, s.worst_abs_rel_error
            );
        }
    }
}
